#include "check/crash_explorer.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "check/invariant_checker.h"
#include "cluster/cluster.h"
#include "common/rand.h"
#include "ds/hash_table.h"
#include "ds/queue.h"
#include "ds/skiplist.h"
#include "ds/stack.h"

namespace asymnvm {

namespace {

constexpr NodeId kBackend = 1;
constexpr const char *kDsName = "sweep";
constexpr uint64_t kHashBuckets = 64;
/** Post-recovery usability probe; key above every scripted key. */
constexpr Key kProbeKey = 0xFFFF;
constexpr uint64_t kProbeVal = 0xD00DFEED;
/** Stop collecting after this many violations (keeps failures readable). */
constexpr size_t kMaxViolations = 40;

struct ScriptOp
{
    enum class K
    {
        Add,
        Remove,
        Read,
    };
    K k;
    Key key;
    uint64_t val;
};

/** Shadow model: `list` for stack/queue (oldest/bottom first). */
struct Model
{
    std::vector<uint64_t> list;
    std::map<Key, uint64_t> map;
};

std::vector<ScriptOp>
makeScript(uint32_t ops, uint64_t seed)
{
    Rng rng(seed);
    std::vector<ScriptOp> script;
    script.reserve(ops);
    const uint64_t key_span = std::max<uint64_t>(1, ops / 3);
    for (uint32_t i = 0; i < ops; ++i) {
        const uint64_t r = rng.nextBounded(100);
        ScriptOp op;
        op.k = r < 60 ? ScriptOp::K::Add
                      : (r < 85 ? ScriptOp::K::Remove : ScriptOp::K::Read);
        op.key = 1 + rng.nextBounded(key_span);
        op.val = 0x10000000ull + i;
        script.push_back(op);
    }
    return script;
}

void
applyToModel(WorkloadKind kind, Model *m, const ScriptOp &op)
{
    switch (kind) {
    case WorkloadKind::Stack:
        if (op.k == ScriptOp::K::Add)
            m->list.push_back(op.val);
        else if (op.k == ScriptOp::K::Remove && !m->list.empty())
            m->list.pop_back();
        break;
    case WorkloadKind::Queue:
        if (op.k == ScriptOp::K::Add)
            m->list.push_back(op.val);
        else if (op.k == ScriptOp::K::Remove && !m->list.empty())
            m->list.erase(m->list.begin());
        break;
    case WorkloadKind::HashTable:
    case WorkloadKind::SkipList:
        if (op.k == ScriptOp::K::Add)
            m->map[op.key] = op.val;
        else if (op.k == ScriptOp::K::Remove)
            m->map.erase(op.key);
        break;
    }
}

/** One freshly-wired cluster + session + structure under test. */
struct Run
{
    std::unique_ptr<Cluster> cluster; // destroyed last
    std::unique_ptr<FrontendSession> session;
    Stack stack;
    Queue queue;
    HashTable hash;
    SkipList skip;
};

DsId
dsIdOf(Run &run, WorkloadKind kind)
{
    switch (kind) {
    case WorkloadKind::Stack:
        return run.stack.id();
    case WorkloadKind::Queue:
        return run.queue.id();
    case WorkloadKind::HashTable:
        return run.hash.id();
    case WorkloadKind::SkipList:
        return run.skip.id();
    }
    return 0;
}

std::unique_ptr<Run>
setupRun(const ExplorerOptions &opt, std::string *err)
{
    auto run = std::make_unique<Run>();
    ClusterConfig cc;
    cc.num_backends = 1;
    cc.mirrors_per_backend = 0;
    cc.backend = opt.backend;
    run->cluster = std::make_unique<Cluster>(cc);
    run->session = run->cluster->makeSession(opt.session);
    Status st = Status::Ok;
    switch (opt.kind) {
    case WorkloadKind::Stack:
        st = Stack::create(*run->session, kBackend, kDsName, &run->stack);
        break;
    case WorkloadKind::Queue:
        st = Queue::create(*run->session, kBackend, kDsName, &run->queue);
        break;
    case WorkloadKind::HashTable:
        st = HashTable::create(*run->session, kBackend, kDsName,
                               kHashBuckets, &run->hash);
        break;
    case WorkloadKind::SkipList:
        st = SkipList::create(*run->session, kBackend, kDsName,
                              &run->skip);
        break;
    }
    if (ok(st))
        st = run->session->persistentFence(); // setup durable before arming
    if (!ok(st)) {
        *err = "workload setup failed";
        return nullptr;
    }
    return run;
}

Status
reopenStructure(Run &run, WorkloadKind kind)
{
    switch (kind) {
    case WorkloadKind::Stack:
        return Stack::open(*run.session, kBackend, kDsName, &run.stack);
    case WorkloadKind::Queue:
        return Queue::open(*run.session, kBackend, kDsName, &run.queue);
    case WorkloadKind::HashTable:
        return HashTable::open(*run.session, kBackend, kDsName, &run.hash);
    case WorkloadKind::SkipList:
        return SkipList::open(*run.session, kBackend, kDsName, &run.skip);
    }
    return Status::InvalidArgument;
}

/**
 * Execute one script op against the live structure, checking benign
 * results against the pre-op model @p before. Returns the op's status;
 * value/status mismatches under a benign status go into @p mismatch.
 */
Status
applyScriptOp(Run &run, WorkloadKind kind, const ScriptOp &op,
              const Model &before, std::string *mismatch)
{
    Value v;
    Status st = Status::Ok;
    auto expectVal = [&](uint64_t want, const char *what) {
        if (v.asU64() != want)
            *mismatch = std::string(what) + " returned a wrong value";
    };
    switch (kind) {
    case WorkloadKind::Stack:
        if (op.k == ScriptOp::K::Add)
            return run.stack.push(Value::ofU64(op.val));
        st = op.k == ScriptOp::K::Remove ? run.stack.pop(&v)
                                         : run.stack.top(&v);
        if (before.list.empty()) {
            if (st == Status::Ok)
                *mismatch = "stack yielded a value while the model is "
                            "empty";
            return st == Status::NotFound ? Status::Ok : st;
        }
        if (st == Status::Ok)
            expectVal(before.list.back(), "stack");
        return st;
    case WorkloadKind::Queue:
        if (op.k == ScriptOp::K::Add)
            return run.queue.enqueue(Value::ofU64(op.val));
        st = op.k == ScriptOp::K::Remove ? run.queue.dequeue(&v)
                                         : run.queue.front(&v);
        if (before.list.empty()) {
            if (st == Status::Ok)
                *mismatch = "queue yielded a value while the model is "
                            "empty";
            return st == Status::NotFound ? Status::Ok : st;
        }
        if (st == Status::Ok)
            expectVal(before.list.front(), "queue");
        return st;
    case WorkloadKind::HashTable:
    case WorkloadKind::SkipList: {
        const bool is_hash = kind == WorkloadKind::HashTable;
        if (op.k == ScriptOp::K::Add)
            return is_hash ? run.hash.put(op.key, Value::ofU64(op.val))
                           : run.skip.insert(op.key, Value::ofU64(op.val));
        if (op.k == ScriptOp::K::Remove) {
            st = is_hash ? run.hash.erase(op.key)
                         : run.skip.erase(op.key);
            const bool present = before.map.count(op.key) != 0;
            if (st == Status::Ok && !present)
                *mismatch = "erase succeeded on an absent key";
            if (st == Status::NotFound && present)
                *mismatch = "erase missed a present key";
            return st == Status::NotFound ? Status::Ok : st;
        }
        st = is_hash ? run.hash.get(op.key, &v)
                     : run.skip.find(op.key, &v);
        auto it = before.map.find(op.key);
        if (it == before.map.end()) {
            if (st == Status::Ok)
                *mismatch = "lookup found an absent key";
            return st == Status::NotFound ? Status::Ok : st;
        }
        if (st == Status::NotFound)
            *mismatch = "lookup missed a present key";
        else if (st == Status::Ok)
            expectVal(it->second, "lookup");
        return st == Status::NotFound ? Status::Ok : st;
    }
    }
    return Status::InvalidArgument;
}

struct DriveResult
{
    bool crashed = false;
    uint32_t issued = 0;    //!< ops that returned a benign status
    uint32_t committed = 0; //!< ops acked at the last persistence point
    std::vector<std::string> mismatches;
};

DriveResult
driveScript(Run &run, const ExplorerOptions &opt,
            const std::vector<ScriptOp> &script)
{
    DriveResult r;
    Model model;
    for (uint32_t i = 0; i < script.size(); ++i) {
        std::string mism;
        const Status st =
            applyScriptOp(run, opt.kind, script[i], model, &mism);
        if (!ok(st)) {
            r.crashed = true;
            return r;
        }
        if (!mism.empty())
            r.mismatches.push_back("op " + std::to_string(i) + ": " +
                                   mism);
        applyToModel(opt.kind, &model, script[i]);
        ++r.issued;
        // A drained batch means a group commit just persisted everything
        // acked so far; per-op modes drain after every op.
        if (run.session->opsInBatch() == 0)
            r.committed = r.issued;
        if (opt.flush_every != 0 && (i + 1) % opt.flush_every == 0) {
            if (!ok(run.session->persistentFence())) {
                r.crashed = true;
                return r;
            }
            r.committed = r.issued;
        }
    }
    if (!ok(run.session->persistentFence()))
        r.crashed = true;
    else
        r.committed = r.issued;
    return r;
}

bool
recoverRun(Run &run, WorkloadKind kind, std::string *err)
{
    Cluster &cl = *run.cluster;
    // Anything still staged in the device journal is lost with the power.
    cl.backend(kBackend)->nvm().crash();
    Status st = cl.restartBackend(kBackend);
    if (!ok(st)) {
        *err = "restartBackend failed";
        return false;
    }
    run.session->simulateCrash();
    st = run.session->failover(kBackend, cl.backend(kBackend));
    if (!ok(st)) {
        *err = "session failover failed";
        return false;
    }
    st = reopenStructure(run, kind);
    if (!ok(st)) {
        *err = "structure reopen failed";
        return false;
    }
    // failover() already ran recovery once, but the replayers only exist
    // now that the structure is reopened; this pass replays uncovered ops.
    st = run.session->recover();
    if (!ok(st)) {
        *err = "session recover failed";
        return false;
    }
    return true;
}

bool
stateEq(WorkloadKind kind, const Model &m,
        const std::vector<uint64_t> &list, const std::map<Key, uint64_t> &map)
{
    switch (kind) {
    case WorkloadKind::Stack: {
        // Extraction is top-first; the model list is bottom-first.
        if (list.size() != m.list.size())
            return false;
        return std::equal(list.begin(), list.end(), m.list.rbegin());
    }
    case WorkloadKind::Queue:
        return list == m.list;
    case WorkloadKind::HashTable:
    case WorkloadKind::SkipList:
        return map == m.map;
    }
    return false;
}

/** Extract the audited structure; true when the walk itself succeeded. */
bool
extractState(Run &run, WorkloadKind kind, InvariantChecker *chk,
             AuditReport *rep, std::vector<uint64_t> *list,
             std::map<Key, uint64_t> *map)
{
    const DsId ds = dsIdOf(run, kind);
    switch (kind) {
    case WorkloadKind::Stack: {
        auto got = chk->stackContents(ds, rep);
        if (!got)
            return false;
        *list = std::move(*got);
        return true;
    }
    case WorkloadKind::Queue: {
        auto got = chk->queueContents(ds, rep);
        if (!got)
            return false;
        *list = std::move(*got);
        return true;
    }
    case WorkloadKind::HashTable: {
        auto got = chk->hashContents(ds, rep);
        if (!got)
            return false;
        *map = std::move(*got);
        return true;
    }
    case WorkloadKind::SkipList: {
        auto got = chk->skipContents(ds, rep);
        if (!got)
            return false;
        *map = std::move(*got);
        return true;
    }
    }
    return false;
}

void
auditRecoveredState(Run &run, const ExplorerOptions &opt,
                    const std::vector<ScriptOp> &script,
                    const DriveResult &drive, AuditReport *rep)
{
    BackendNode *node = run.cluster->backend(kBackend);
    const bool strict = opt.session.use_txlog && !opt.session.symmetric;
    InvariantChecker chk(node, strict);
    const DsId ds = dsIdOf(run, opt.kind);

    chk.checkQuiescent(ds, rep);
    for (uint32_t slot = 0; slot < opt.backend.max_frontends; ++slot)
        chk.checkLogControl(slot, rep);

    std::vector<uint64_t> list;
    std::map<Key, uint64_t> map;
    if (!extractState(run, opt.kind, &chk, rep, &list, &map))
        return;

    // Durability + atomicity: the image must equal the model after some
    // script prefix of length j with committed <= j <= issued (+1 for the
    // op in flight when the crash hit). Anything else — a lost acked op,
    // a half-applied batch, a resurrected annulled op — fails every j.
    Model m;
    size_t j = 0;
    for (; j < drive.committed; ++j)
        applyToModel(opt.kind, &m, script[j]);
    const size_t hi = std::min<size_t>(
        script.size(), drive.crashed ? drive.issued + 1 : drive.issued);
    bool matched = stateEq(opt.kind, m, list, map);
    while (!matched && j < hi) {
        applyToModel(opt.kind, &m, script[j]);
        ++j;
        matched = stateEq(opt.kind, m, list, map);
    }
    if (!matched) {
        rep->add("recovered state matches no script prefix in [" +
                 std::to_string(drive.committed) + ", " +
                 std::to_string(hi) + "]");
        return;
    }

    // Service restored: one more op must succeed and persist.
    const ScriptOp probe{ScriptOp::K::Add, kProbeKey, kProbeVal};
    std::string mism;
    Status st = applyScriptOp(run, opt.kind, probe, m, &mism);
    if (!ok(st)) {
        rep->add("post-recovery op failed");
        return;
    }
    if (!ok(run.session->persistentFence())) {
        rep->add("post-recovery fence failed");
        return;
    }
    applyToModel(opt.kind, &m, probe);
    list.clear();
    map.clear();
    if (!extractState(run, opt.kind, &chk, rep, &list, &map))
        return;
    if (strict) {
        if (!stateEq(opt.kind, m, list, map))
            rep->add("state diverged from the model after the "
                     "post-recovery op");
        return;
    }
    // Naive mode: the pre-crash in-flight op may legally vanish when its
    // half-written linkage is overwritten, so only require the probe to
    // have landed where the workload puts new elements.
    switch (opt.kind) {
    case WorkloadKind::Stack:
        if (list.empty() || list.front() != kProbeVal)
            rep->add("post-recovery push is not on top of the stack");
        break;
    case WorkloadKind::Queue:
        if (list.empty() || list.back() != kProbeVal)
            rep->add("post-recovery enqueue is not at the queue tail");
        break;
    case WorkloadKind::HashTable:
    case WorkloadKind::SkipList: {
        auto it = map.find(kProbeKey);
        if (it == map.end() || it->second != kProbeVal)
            rep->add("post-recovery insert is missing");
        break;
    }
    }
}

std::string
presetName(const SessionConfig &s)
{
    std::string name;
    if (s.symmetric)
        name = "sym";
    else if (!s.use_txlog)
        name = "naive";
    else if (s.batch_size > 1)
        name = s.use_cache ? "rcb" : "rb";
    else
        name = s.use_cache ? "rc" : "r";
    // Non-default log encodings change the torn-write detection story;
    // tag the trace so a violation names the format it came from.
    if (s.log_format == LogFormatKind::HeaderDancing)
        name += "+hd";
    else if (s.log_format == LogFormatKind::ZeroBased)
        name += "+zb";
    return name;
}

/**
 * Tear prefixes to try at one verb: nothing landed, everything landed,
 * and (logged modes only) sampled interior 64-byte boundaries. Naive
 * sessions have no checksums, so interior tears are outside their
 * contract — see the file comment in crash_explorer.h.
 */
std::vector<uint64_t>
tearPrefixes(uint64_t write_len, bool logged, uint32_t max_interior)
{
    std::vector<uint64_t> keeps{0};
    if (write_len == 0)
        return keeps;
    if (logged && write_len > 64) {
        std::vector<uint64_t> interior;
        for (uint64_t keep = 64; keep < write_len; keep += 64)
            interior.push_back(keep);
        const uint64_t n =
            std::min<uint64_t>(max_interior, interior.size());
        for (uint64_t i = 0; i < n; ++i)
            keeps.push_back(interior[i * interior.size() / n]);
    }
    keeps.push_back(write_len);
    return keeps;
}

} // namespace

const char *
workloadName(WorkloadKind kind)
{
    switch (kind) {
    case WorkloadKind::Stack:
        return "stack";
    case WorkloadKind::Queue:
        return "queue";
    case WorkloadKind::HashTable:
        return "hash";
    case WorkloadKind::SkipList:
        return "skiplist";
    }
    return "?";
}

BackendConfig
sweepBackendConfig()
{
    // Small enough that per-crash-point cluster construction stays cheap,
    // big enough for the sweep workloads with room to spare.
    BackendConfig bc;
    bc.nvm_size = 8ull << 20;
    bc.max_frontends = 2;
    bc.max_names = 8;
    bc.memlog_ring_size = 128ull << 10;
    bc.oplog_ring_size = 64ull << 10;
    bc.rpc_ring_size = 8ull << 10;
    return bc;
}

std::string
ExplorerResult::violationText() const
{
    std::ostringstream os;
    for (const auto &v : violations)
        os << "  - " << v << "\n";
    return os.str();
}

ExplorerResult
exploreCrashPoints(const ExplorerOptions &opt)
{
    ExplorerResult res;
    const auto script = makeScript(opt.ops, opt.seed);
    const std::string tag =
        std::string(workloadName(opt.kind)) + "/" + presetName(opt.session);

    // Recording pass: one clean run captures the verb trace.
    std::vector<uint64_t> lens;
    {
        std::string err;
        auto run = setupRun(opt, &err);
        if (!run) {
            res.violations.push_back("[" + tag + "] " + err);
            return res;
        }
        FailureInjector &fi = run->cluster->backend(kBackend)->failure();
        fi.startRecording();
        const DriveResult d = driveScript(*run, opt, script);
        fi.stopRecording();
        if (d.crashed) {
            res.violations.push_back("[" + tag +
                                     "] clean recording run crashed");
            return res;
        }
        for (const auto &m : d.mismatches)
            res.violations.push_back("[" + tag + " clean] " + m);
        lens = fi.recordedWriteLens();
    }
    res.workload_verbs = lens.size();
    if (lens.empty()) {
        res.violations.push_back("[" + tag + "] workload issued no verbs");
        return res;
    }

    // Evenly sample verb indices within the budget.
    std::vector<uint64_t> indices;
    const uint64_t want =
        opt.max_points == 0
            ? lens.size()
            : std::min<uint64_t>(opt.max_points, lens.size());
    for (uint64_t i = 0; i < want; ++i) {
        const uint64_t idx = i * lens.size() / want;
        if (indices.empty() || indices.back() != idx)
            indices.push_back(idx);
    }

    const bool logged = opt.session.use_txlog && !opt.session.symmetric;
    for (const uint64_t idx : indices) {
        for (const uint64_t keep :
             tearPrefixes(lens[idx], logged, opt.max_tears_per_point)) {
            if (res.violations.size() >= kMaxViolations) {
                res.violations.push_back("[" + tag +
                                         "] ... sweep aborted: too many "
                                         "violations");
                return res;
            }
            ++res.points_run;
            std::ostringstream lbl;
            lbl << "[" << tag << " verb=" << idx << " keep=" << keep
                << "] ";

            std::string err;
            auto run = setupRun(opt, &err);
            if (!run) {
                res.violations.push_back(lbl.str() + err);
                continue;
            }
            run->cluster->backend(kBackend)->failure().armCrashAtVerb(
                idx, keep);
            const DriveResult d = driveScript(*run, opt, script);
            const auto fired =
                run->cluster->backend(kBackend)->failure().firedAtVerb();
            if (!fired.has_value()) {
                res.violations.push_back(
                    lbl.str() + "armed crash point never fired "
                                "(workload nondeterminism)");
                continue;
            }
            ++res.crashes_fired;
            for (const auto &m : d.mismatches)
                res.violations.push_back(lbl.str() + "pre-crash " + m);

            if (!recoverRun(*run, opt.kind, &err)) {
                res.violations.push_back(lbl.str() + err);
                continue;
            }
            ++res.recoveries;

            AuditReport rep;
            auditRecoveredState(*run, opt, script, d, &rep);
            for (const auto &v : rep.violations)
                res.violations.push_back(lbl.str() + v);
        }
    }
    return res;
}

} // namespace asymnvm
