#ifndef ASYMNVM_CHECK_CHAOS_H_
#define ASYMNVM_CHECK_CHAOS_H_

/**
 * @file
 * Chaos-soak harness: mixed data-structure workloads under a seeded
 * schedule of transient back-end crashes, permanent failures with mirror
 * promotion, mirror deaths, network-fault windows (dropped / delayed /
 * duplicated verb completions, QP errors) and gray slowdowns — all in
 * virtual time, fully deterministic per seed.
 *
 * The harness drives a transparent-failover cluster (Section 7.2) and
 * holds it to two promises:
 *
 *  1. *Availability*: while a promotable NVM mirror (or the restartable
 *     node itself) exists, no operation may fail — transient faults are
 *     absorbed by the verb retry policy and back-end failures by
 *     session-level failover. Unavailable must never escape.
 *  2. *Durability / SWMR*: after every recovery, and at the end of the
 *     run, the raw NVM image must pass the InvariantChecker audits and
 *     its logical contents must equal an in-DRAM shadow model replaying
 *     the acknowledged operations.
 *
 * Back-end crashes fire between operations (at operation boundaries,
 * where every first primitive of the next op is idempotent); transient
 * network faults fire anywhere, including mid-operation, because the
 * verbs layer absorbs them below op granularity.
 */

#include <cstdint>
#include <string>

namespace asymnvm {

/** One seeded chaos run's knobs. Probabilities are per operation. */
struct ChaosConfig
{
    uint64_t seed = 1;
    uint32_t num_ops = 240;
    uint32_t sessions = 1;        //!< concurrent front-end sessions
    uint32_t mirrors = 2;
    uint32_t batch_size = 16;     //!< RCB group-commit size
    double p_transient = 0.02;    //!< transient back-end crash (Case 3)
    double p_permanent = 0.008;   //!< condemned back-end (Case 4)
    double p_mirror_crash = 0.006; //!< mirror death (Case 5)
    double p_fault_window = 0.05; //!< open a transient-network-fault window
    uint32_t fault_window_ops = 12; //!< its length, in operations
    double p_gray = 0.02;         //!< gray slowdown burst
};

/** Outcome + observability counters of one chaos run. */
struct ChaosResult
{
    bool ok = true;
    std::string error; //!< first violation, empty when ok

    uint64_t ops_done = 0;
    uint64_t failovers = 0; //!< transparent heals the sessions completed
    uint64_t transient_crashes = 0;
    uint64_t permanent_failures = 0;
    uint64_t mirror_crashes = 0;
    uint64_t fault_windows = 0;
    uint64_t gray_bursts = 0;
    uint64_t verb_retries = 0; //!< transient faults absorbed by retries
    uint64_t rpc_resends = 0;
    uint64_t audits = 0; //!< invariant audits that ran (and passed)

    // Multi-session promotion-race observability (epoch directory +
    // per-session counters, summed). promotions == the number of epoch
    // bumps; the audit separately proves one promotion *record* per
    // epoch and contiguity.
    uint64_t promotions = 0;
    uint64_t promotions_won = 0;  //!< claim CAS wins, across sessions
    uint64_t promotions_lost = 0; //!< claim races lost, across sessions
    uint64_t stale_fenced = 0;    //!< zombie re-resolves forced by fence
    uint64_t claim_takeovers = 0; //!< stalled claims taken over
};

/** Run one seeded chaos soak; see the file comment for the contract. */
ChaosResult runChaosSoak(const ChaosConfig &cfg);

} // namespace asymnvm

#endif // ASYMNVM_CHECK_CHAOS_H_
