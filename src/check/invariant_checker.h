#ifndef ASYMNVM_CHECK_INVARIANT_CHECKER_H_
#define ASYMNVM_CHECK_INVARIANT_CHECKER_H_

/**
 * @file
 * Post-recovery invariant validation against raw back-end NVM.
 *
 * After a simulated crash and recovery (Section 7), the durable image must
 * be *logically* consistent: writer locks released, seqlocks quiescent,
 * log rings sane, and every data structure extractable by walking raw node
 * bytes — without any front-end session, cache, or shadow state. The
 * extraction doubles as the allocator audit: every reachable node must lie
 * in allocated blocks of the data area.
 *
 * Two strictness levels: the logged modes (R/RC/RCB) promise op-granular
 * atomicity, so counts, tails and per-level skiplist membership must agree
 * exactly. AsymNVM-Naive issues direct per-write RDMA and makes no mid-op
 * crash promises (that is the point of the paper's logging), so `strict =
 * false` tolerates the bounded mid-op states naive can legally leave:
 * element counts one behind the walk, a stale queue tail, a half-unlinked
 * skiplist tower.
 */

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "backend/backend_node.h"

namespace asymnvm {

/** Accumulated invariant violations from one crash-point audit. */
struct AuditReport
{
    std::vector<std::string> violations;

    bool clean() const { return violations.empty(); }
    void add(std::string v) { violations.push_back(std::move(v)); }
    /** All violations joined for test failure messages. */
    std::string str() const;
};

/** Validates recovery invariants by reading a back-end's NVM directly. */
class InvariantChecker
{
  public:
    /** @param strict Logged-mode exactness (see file comment). */
    explicit InvariantChecker(BackendNode *node, bool strict = true)
        : node_(node), strict_(strict)
    {}

    /**
     * Concurrency quiescence for @p ds: writer lock free, seqlock SN even
     * (no writer died inside a critical section without the recovery
     * protocol noticing).
     */
    void checkQuiescent(DsId ds, AuditReport *rep);

    /**
     * Log-control sanity for front-end @p slot: ring heads within one lap
     * of their tails, covered_opn <= opn, lock-ahead word clear, and every
     * record in the uncovered op window decodable (an undecodable record
     * inside the window would be silently skipped by replay).
     */
    void checkLogControl(uint32_t slot, AuditReport *rep);

    /**
     * Walk @p ds and verify every reachable node lies in allocated blocks
     * of the data area (allocator bitmap vs. reachable heap). Leaked
     * blocks (allocated but unreachable) are legal — recovery re-executes
     * ops rather than reclaiming partial allocations.
     */
    void checkHeap(DsId ds, AuditReport *rep);

    // ------------------------------------------------------------------
    // Raw logical-content extraction (runs the same walks as checkHeap).
    // Returns nullopt after recording a violation when the on-NVM image
    // is structurally broken (cycle, out-of-range pointer, ...).
    // ------------------------------------------------------------------

    /** Stack values, top first. */
    std::optional<std::vector<uint64_t>> stackContents(DsId ds,
                                                       AuditReport *rep);
    /** Queue values, oldest first. */
    std::optional<std::vector<uint64_t>> queueContents(DsId ds,
                                                       AuditReport *rep);
    /** Hash-table contents (first 8 value bytes). */
    std::optional<std::map<Key, uint64_t>> hashContents(DsId ds,
                                                        AuditReport *rep);
    /** Skiplist contents from the bottom-level chain. */
    std::optional<std::map<Key, uint64_t>> skipContents(DsId ds,
                                                        AuditReport *rep);

  private:
    /** Mirrors of the private DS node PODs (layout asserted in .cc). */
    struct ListNodeImage
    {
        Value value;
        uint64_t next_raw;
        uint64_t pad;
    };
    struct HashNodeImage
    {
        Key key;
        uint64_t next_raw;
        Value value;
    };
    struct SkipNodeImage
    {
        Key key;
        uint32_t level;
        uint32_t pad;
        Value value;
        uint64_t next[16];
    };

    /**
     * Validate that @p raw points into this back-end's data area with
     * @p size bytes of allocated blocks behind it, then read the node
     * image. Returns false (recording a violation) on any failure.
     */
    bool readNodeImage(uint64_t raw, void *image, size_t size,
                       const char *what, AuditReport *rep);

    std::optional<NamingEntry> entryOfType(DsId ds, DsType want,
                                           const char *what,
                                           AuditReport *rep);

    BackendNode *node_;
    bool strict_;
};

} // namespace asymnvm

#endif // ASYMNVM_CHECK_INVARIANT_CHECKER_H_
