#include "check/chaos.h"

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "check/invariant_checker.h"
#include "cluster/cluster.h"
#include "common/rand.h"
#include "ds/hash_table.h"
#include "ds/stack.h"
#include "frontend/session.h"

namespace asymnvm {

namespace {

/** Workload key space: small enough to exercise chains and erases. */
constexpr uint64_t kKeySpace = 64;

std::string
describe(const char *what, Status st)
{
    return std::string(what) + " -> " + statusName(st);
}

/** One front-end session with its own structures and shadow models.
 *  Structures are per-session because the simulation is SWMR: each
 *  writer owns its structures, but all share the back-end, its log
 *  slots, heap, naming space — and its failures. */
struct SessionCtx
{
    std::unique_ptr<FrontendSession> s;
    HashTable ht;
    Stack stk;
    std::map<Key, uint64_t> shadow_hash;
    std::vector<uint64_t> shadow_stack; // top at the back
};

} // namespace

ChaosResult
runChaosSoak(const ChaosConfig &cfg)
{
    ChaosResult res;
    auto fail = [&res](std::string why) -> ChaosResult & {
        if (res.ok) {
            res.ok = false;
            res.error = std::move(why);
        }
        return res;
    };

    const uint32_t nsessions = std::max(1u, cfg.sessions);

    ClusterConfig ccfg;
    ccfg.num_backends = 1;
    ccfg.mirrors_per_backend = cfg.mirrors;
    ccfg.backend.nvm_size = (16ull << 20) + nsessions * (2ull << 20);
    ccfg.backend.max_frontends = std::max(4u, nsessions);
    ccfg.backend.max_names = std::max(16u, 2 * nsessions + 4);
    ccfg.backend.memlog_ring_size = 256ull << 10;
    ccfg.backend.oplog_ring_size = 256ull << 10;
    ccfg.transparent_failover = true;
    Cluster cluster(ccfg);

    std::vector<SessionCtx> sess(nsessions);
    std::set<uint64_t> session_ids;
    for (uint32_t j = 0; j < nsessions; ++j) {
        SessionCtx &sc = sess[j];
        sc.s = cluster.makeSession(
            SessionConfig::rcb(1, 1ull << 20, cfg.batch_size));
        if (sc.s == nullptr)
            return fail("makeSession failed");
        session_ids.insert(sc.s->config().session_id);
        Status st = HashTable::create(
            *sc.s, 1, "chaos_hash_" + std::to_string(j), 64, &sc.ht);
        if (!ok(st))
            return fail(describe("HashTable::create", st));
        st = Stack::create(*sc.s, 1,
                           "chaos_stack_" + std::to_string(j), &sc.stk);
        if (!ok(st))
            return fail(describe("Stack::create", st));
        st = sc.s->flushAll();
        if (!ok(st))
            return fail(describe("initial flushAll", st));
    }

    // Audit the raw NVM image against every session's shadows (quiesced
    // first), then the promotion ledger: epochs must be contiguous with
    // exactly one promotion record each, won by a known session (or by
    // the harness, winner 0).
    auto audit = [&](const char *when) -> bool {
        for (SessionCtx &sc : sess) {
            const Status fst = sc.s->flushAll();
            if (!ok(fst)) {
                fail(describe("audit flushAll", fst) + " (" + when +
                     ")");
                return false;
            }
        }
        BackendNode *be = cluster.backend(1);
        InvariantChecker chk(be, /*strict=*/true);
        AuditReport rep;
        for (uint32_t slot = 0; slot < nsessions; ++slot)
            chk.checkLogControl(slot, &rep);
        for (SessionCtx &sc : sess) {
            chk.checkQuiescent(sc.ht.id(), &rep);
            chk.checkQuiescent(sc.stk.id(), &rep);
            chk.checkHeap(sc.ht.id(), &rep);
            chk.checkHeap(sc.stk.id(), &rep);
            const auto hc = chk.hashContents(sc.ht.id(), &rep);
            const auto scs = chk.stackContents(sc.stk.id(), &rep);
            if (!rep.clean()) {
                fail(std::string("invariants (") + when +
                     "): " + rep.str());
                return false;
            }
            if (!hc.has_value() || *hc != sc.shadow_hash) {
                fail(std::string(
                         "hash contents diverge from shadow (") +
                     when + "): NVM has " +
                     std::to_string(hc.has_value() ? hc->size() : 0) +
                     " keys, shadow has " +
                     std::to_string(sc.shadow_hash.size()));
                return false;
            }
            std::vector<uint64_t> want(sc.shadow_stack.rbegin(),
                                       sc.shadow_stack.rend());
            if (!scs.has_value() || *scs != want) {
                fail(std::string(
                         "stack contents diverge from shadow (") +
                     when + "): NVM depth " +
                     std::to_string(scs.has_value() ? scs->size()
                                                    : 0) +
                     ", shadow depth " + std::to_string(want.size()));
                return false;
            }
        }
        const auto hist = cluster.failoverEpochs().history();
        uint64_t expect = 2; // slots are born at epoch 1
        for (const auto &rec : hist) {
            if (rec.node != 1) {
                fail("promotion record for unexpected node");
                return false;
            }
            if (rec.epoch != expect) {
                fail("promotion epochs not contiguous (epoch " +
                     std::to_string(rec.epoch) + ", expected " +
                     std::to_string(expect) + ")");
                return false;
            }
            if (rec.winner_session != 0 &&
                session_ids.count(rec.winner_session) == 0) {
                fail("promotion won by unknown session " +
                     std::to_string(rec.winner_session));
                return false;
            }
            ++expect;
        }
        if (cluster.slotEpoch(1) != 1 + hist.size()) {
            fail("slot epoch diverges from promotion history");
            return false;
        }
        ++res.audits;
        return true;
    };

    Rng rng(cfg.seed * 0x9e3779b97f4a7c15ULL + 1);
    bool condemned = false;
    uint32_t fault_ops_left = 0;
    FaultConfig window_cfg;
    std::vector<uint64_t> fo_seen(nsessions, 0);

    auto maxNow = [&] {
        uint64_t mx = 0;
        for (SessionCtx &sc : sess)
            mx = std::max(mx, sc.s->clock().now());
        return mx;
    };

    for (uint32_t i = 0; res.ok && i < cfg.num_ops; ++i) {
        SessionCtx &sc = sess[i % nsessions];

        // Keepalive heartbeats at the frontier of virtual time: a live
        // primary renews (a condemned one, by definition, never will
        // again); surviving mirrors renew.
        const uint64_t mx = maxNow();
        if (!condemned)
            cluster.keepAlive().renew(1, mx);
        for (MirrorNode *m : cluster.mirrorsOf(1))
            cluster.keepAlive().renew(m->id(), mx);

        // Maintain the transient-network-fault window across failovers:
        // a replacement back-end arrives with a fresh, disarmed model.
        BackendNode *be = cluster.backend(1);
        if (fault_ops_left > 0) {
            --fault_ops_left;
            if (fault_ops_left == 0)
                be->faults().disarm();
            else if (!be->faults().armed())
                be->faults().configure(window_cfg,
                                       cfg.seed ^ (i * 0x100000001b3ULL));
        }

        // Inject at most one chaos event per operation boundary.
        if (rng.nextBool(cfg.p_transient)) {
            cluster.crashBackendTransient(1);
            ++res.transient_crashes;
        } else if (!condemned && rng.nextBool(cfg.p_permanent) &&
                   !cluster.mirrorsOf(1).empty()) {
            cluster.condemnBackend(1);
            condemned = true;
            ++res.permanent_failures;
            // Detection delay: the group only declares the node dead
            // once its lease lapses. Jump every session's clock past
            // the lease in sub-lease steps (staggered, so no two
            // sessions resolve at the same instant), renewing the
            // surviving mirrors at each step — their keepalive agents
            // outlive the primary's silence.
            const uint64_t lease = cluster.keepAlive().leaseNs();
            for (int step = 0; step < 3; ++step) {
                for (uint32_t j = 0; j < nsessions; ++j)
                    sess[j].s->clock().advance(lease / 2 + j * 1000);
                const uint64_t t = maxNow();
                for (MirrorNode *m : cluster.mirrorsOf(1))
                    cluster.keepAlive().renew(m->id(), t);
            }
        } else if (rng.nextBool(cfg.p_mirror_crash) &&
                   cluster.mirrorsOf(1).size() > 1) {
            // Keep at least one mirror so the availability promise holds.
            cluster.crashMirror(
                1, rng.nextBounded(cluster.mirrorsOf(1).size()), mx);
            ++res.mirror_crashes;
        } else if (fault_ops_left == 0 &&
                   rng.nextBool(cfg.p_fault_window)) {
            window_cfg = FaultConfig{};
            window_cfg.drop_rate = 0.02;
            window_cfg.delay_rate = 0.05;
            window_cfg.qp_error_rate = 0.01;
            be->faults().configure(window_cfg,
                                   cfg.seed ^ (i * 0x9e3779b9ULL));
            fault_ops_left = cfg.fault_window_ops;
            ++res.fault_windows;
        } else if (rng.nextBool(cfg.p_gray)) {
            be->faults().slowDownUntil(mx + 200000, /*extra_ns=*/500);
            ++res.gray_bursts;
        }

        // While the primary is condemned and down, every session probes
        // the resolver (the KeepAlive rejoin path): once the lease
        // lapses, k sessions race the promotion claim — exactly one may
        // win it; the rest must observe the race and re-resolve.
        const size_t hist_before =
            cluster.failoverEpochs().history().size();
        if (condemned && cluster.backend(1)->failure().crashed()) {
            for (SessionCtx &x : sess)
                x.s->tryHeal(1);
        }

        // One workload operation, on this session's own structures.
        // Every outcome other than Ok (or a shadow-consistent NotFound)
        // is an availability violation: a promotable mirror or a
        // restartable node always exists here.
        Status st;
        const uint32_t kind = static_cast<uint32_t>(rng.nextBounded(100));
        const Key key = rng.nextBounded(kKeySpace) + 1;
        if (kind < 30) {
            const uint64_t v = rng.next();
            st = sc.ht.put(key, Value::ofU64(v));
            if (!ok(st)) {
                fail(describe("hash put", st));
                break;
            }
            sc.shadow_hash[key] = v;
        } else if (kind < 55) {
            Value v;
            st = sc.ht.get(key, &v);
            const auto it = sc.shadow_hash.find(key);
            if (it == sc.shadow_hash.end()) {
                if (st != Status::NotFound) {
                    fail(describe("hash get of absent key", st));
                    break;
                }
            } else if (!ok(st) || v.asU64() != it->second) {
                fail(describe("hash get", st) + " (value mismatch)");
                break;
            }
        } else if (kind < 70) {
            st = sc.ht.erase(key);
            const bool present = sc.shadow_hash.erase(key) != 0;
            if (present ? !ok(st) : st != Status::NotFound) {
                fail(describe("hash erase", st));
                break;
            }
        } else if (kind < 85) {
            const uint64_t v = rng.next();
            st = sc.stk.push(Value::ofU64(v));
            if (!ok(st)) {
                fail(describe("stack push", st));
                break;
            }
            sc.shadow_stack.push_back(v);
        } else {
            Value v;
            st = sc.stk.pop(&v);
            if (sc.shadow_stack.empty()) {
                if (st != Status::NotFound) {
                    fail(describe("stack pop of empty stack", st));
                    break;
                }
            } else if (!ok(st) || v.asU64() != sc.shadow_stack.back()) {
                fail(describe("stack pop", st) + " (value mismatch)");
                break;
            } else {
                sc.shadow_stack.pop_back();
            }
        }
        ++res.ops_done;

        // Transparent heals ran inside the probes or the op. When a
        // promotion landed (the ledger grew), the condemned node has
        // been replaced; audit the recovered image.
        uint64_t new_fo = 0;
        for (uint32_t j = 0; j < nsessions; ++j) {
            const uint64_t cur = sess[j].s->failoversCompleted();
            new_fo += cur - fo_seen[j];
            fo_seen[j] = cur;
        }
        if (new_fo > 0) {
            res.failovers += new_fo;
            if (cluster.failoverEpochs().history().size() >
                hist_before)
                condemned = false;
            if (!audit("after recovery"))
                break;
        }
    }

    if (res.ok)
        audit("end of run");

    for (SessionCtx &sc : sess) {
        const SessionStats stats = sc.s->stats();
        res.verb_retries += stats.retry.totalRetries();
        res.rpc_resends += stats.retry.rpc_resends;
        res.promotions_won += stats.retry.promotions_won;
        res.promotions_lost += stats.retry.promotions_lost;
        res.stale_fenced += stats.retry.stale_epoch_fenced;
    }
    res.promotions = cluster.failoverEpochs().history().size();
    res.claim_takeovers = cluster.failoverEpochs().stats(1).takeovers;
    return res;
}

} // namespace asymnvm
