#include "check/chaos.h"

#include <algorithm>
#include <map>
#include <vector>

#include "check/invariant_checker.h"
#include "cluster/cluster.h"
#include "common/rand.h"
#include "ds/hash_table.h"
#include "ds/stack.h"
#include "frontend/session.h"

namespace asymnvm {

namespace {

/** Workload key space: small enough to exercise chains and erases. */
constexpr uint64_t kKeySpace = 64;

std::string
describe(const char *what, Status st)
{
    return std::string(what) + " -> " + statusName(st);
}

} // namespace

ChaosResult
runChaosSoak(const ChaosConfig &cfg)
{
    ChaosResult res;
    auto fail = [&res](std::string why) -> ChaosResult & {
        if (res.ok) {
            res.ok = false;
            res.error = std::move(why);
        }
        return res;
    };

    ClusterConfig ccfg;
    ccfg.num_backends = 1;
    ccfg.mirrors_per_backend = cfg.mirrors;
    ccfg.backend.nvm_size = 16ull << 20;
    ccfg.backend.max_frontends = 4;
    ccfg.backend.max_names = 16;
    ccfg.backend.memlog_ring_size = 256ull << 10;
    ccfg.backend.oplog_ring_size = 256ull << 10;
    ccfg.transparent_failover = true;
    Cluster cluster(ccfg);

    auto s = cluster.makeSession(
        SessionConfig::rcb(1, 1ull << 20, cfg.batch_size));
    if (s == nullptr)
        return fail("makeSession failed");

    HashTable ht;
    Status st = HashTable::create(*s, 1, "chaos_hash", 64, &ht);
    if (!ok(st))
        return fail(describe("HashTable::create", st));
    Stack stk;
    st = Stack::create(*s, 1, "chaos_stack", &stk);
    if (!ok(st))
        return fail(describe("Stack::create", st));
    st = s->flushAll();
    if (!ok(st))
        return fail(describe("initial flushAll", st));

    // In-DRAM shadow models of the acknowledged operations.
    std::map<Key, uint64_t> shadow_hash;
    std::vector<uint64_t> shadow_stack; // top at the back

    // Audit the raw NVM image against the shadows (quiesced first).
    auto audit = [&](const char *when) -> bool {
        const Status fst = s->flushAll();
        if (!ok(fst)) {
            fail(describe("audit flushAll", fst) + " (" + when + ")");
            return false;
        }
        BackendNode *be = cluster.backend(1);
        InvariantChecker chk(be, /*strict=*/true);
        AuditReport rep;
        chk.checkLogControl(/*slot=*/0, &rep);
        chk.checkQuiescent(ht.id(), &rep);
        chk.checkQuiescent(stk.id(), &rep);
        chk.checkHeap(ht.id(), &rep);
        chk.checkHeap(stk.id(), &rep);
        const auto hc = chk.hashContents(ht.id(), &rep);
        const auto sc = chk.stackContents(stk.id(), &rep);
        if (!rep.clean()) {
            fail(std::string("invariants (") + when + "): " + rep.str());
            return false;
        }
        if (!hc.has_value() || *hc != shadow_hash) {
            fail(std::string("hash contents diverge from shadow (") +
                 when + "): NVM has " +
                 std::to_string(hc.has_value() ? hc->size() : 0) +
                 " keys, shadow has " +
                 std::to_string(shadow_hash.size()));
            return false;
        }
        std::vector<uint64_t> want(shadow_stack.rbegin(),
                                   shadow_stack.rend());
        if (!sc.has_value() || *sc != want) {
            fail(std::string("stack contents diverge from shadow (") +
                 when + "): NVM depth " +
                 std::to_string(sc.has_value() ? sc->size() : 0) +
                 ", shadow depth " + std::to_string(want.size()));
            return false;
        }
        ++res.audits;
        return true;
    };

    Rng rng(cfg.seed * 0x9e3779b97f4a7c15ULL + 1);
    bool condemned = false;
    uint32_t fault_ops_left = 0;
    FaultConfig window_cfg;

    for (uint32_t i = 0; res.ok && i < cfg.num_ops; ++i) {
        const uint64_t now = s->clock().now();

        // Keepalive heartbeats: a live primary renews (a condemned one,
        // by definition, never will again); surviving mirrors renew.
        if (!condemned)
            cluster.keepAlive().renew(1, now);
        for (MirrorNode *m : cluster.mirrorsOf(1))
            cluster.keepAlive().renew(m->id(), now);

        // Maintain the transient-network-fault window across failovers:
        // a replacement back-end arrives with a fresh, disarmed model.
        BackendNode *be = cluster.backend(1);
        if (fault_ops_left > 0) {
            --fault_ops_left;
            if (fault_ops_left == 0)
                be->faults().disarm();
            else if (!be->faults().armed())
                be->faults().configure(window_cfg,
                                       cfg.seed ^ (i * 0x100000001b3ULL));
        }

        // Inject at most one chaos event per operation boundary.
        if (rng.nextBool(cfg.p_transient)) {
            cluster.crashBackendTransient(1);
            ++res.transient_crashes;
        } else if (!condemned && rng.nextBool(cfg.p_permanent) &&
                   !cluster.mirrorsOf(1).empty()) {
            cluster.condemnBackend(1);
            condemned = true;
            ++res.permanent_failures;
        } else if (rng.nextBool(cfg.p_mirror_crash) &&
                   cluster.mirrorsOf(1).size() > 1) {
            // Keep at least one mirror so the availability promise holds.
            cluster.crashMirror(
                1, rng.nextBounded(cluster.mirrorsOf(1).size()), now);
            ++res.mirror_crashes;
        } else if (fault_ops_left == 0 &&
                   rng.nextBool(cfg.p_fault_window)) {
            window_cfg = FaultConfig{};
            window_cfg.drop_rate = 0.02;
            window_cfg.delay_rate = 0.05;
            window_cfg.qp_error_rate = 0.01;
            be->faults().configure(window_cfg,
                                   cfg.seed ^ (i * 0x9e3779b9ULL));
            fault_ops_left = cfg.fault_window_ops;
            ++res.fault_windows;
        } else if (rng.nextBool(cfg.p_gray)) {
            be->faults().slowDownUntil(now + 200000, /*extra_ns=*/500);
            ++res.gray_bursts;
        }

        // One workload operation. Every outcome other than Ok (or a
        // shadow-consistent NotFound) is an availability violation: a
        // promotable mirror or a restartable node always exists here.
        const uint64_t fo_before = s->failoversCompleted();
        const uint32_t kind = static_cast<uint32_t>(rng.nextBounded(100));
        const Key key = rng.nextBounded(kKeySpace) + 1;
        if (kind < 30) {
            const uint64_t v = rng.next();
            st = ht.put(key, Value::ofU64(v));
            if (!ok(st)) {
                fail(describe("hash put", st));
                break;
            }
            shadow_hash[key] = v;
        } else if (kind < 55) {
            Value v;
            st = ht.get(key, &v);
            const auto it = shadow_hash.find(key);
            if (it == shadow_hash.end()) {
                if (st != Status::NotFound) {
                    fail(describe("hash get of absent key", st));
                    break;
                }
            } else if (!ok(st) || v.asU64() != it->second) {
                fail(describe("hash get", st) + " (value mismatch)");
                break;
            }
        } else if (kind < 70) {
            st = ht.erase(key);
            const bool present = shadow_hash.erase(key) != 0;
            if (present ? !ok(st) : st != Status::NotFound) {
                fail(describe("hash erase", st));
                break;
            }
        } else if (kind < 85) {
            const uint64_t v = rng.next();
            st = stk.push(Value::ofU64(v));
            if (!ok(st)) {
                fail(describe("stack push", st));
                break;
            }
            shadow_stack.push_back(v);
        } else {
            Value v;
            st = stk.pop(&v);
            if (shadow_stack.empty()) {
                if (st != Status::NotFound) {
                    fail(describe("stack pop of empty stack", st));
                    break;
                }
            } else if (!ok(st) || v.asU64() != shadow_stack.back()) {
                fail(describe("stack pop", st) + " (value mismatch)");
                break;
            } else {
                shadow_stack.pop_back();
            }
        }
        ++res.ops_done;

        // A transparent heal ran inside the op: the condemned node (if
        // any) was replaced by promotion. Audit the recovered image.
        const uint64_t fo_after = s->failoversCompleted();
        if (fo_after > fo_before) {
            res.failovers += fo_after - fo_before;
            condemned = false;
            if (!audit("after recovery"))
                break;
        }
    }

    if (res.ok)
        audit("end of run");

    const SessionStats stats = s->stats();
    res.verb_retries = stats.retry.totalRetries();
    res.rpc_resends = stats.retry.rpc_resends;
    return res;
}

} // namespace asymnvm
