#include "workload/workload.h"

#include "common/hash.h"

namespace asymnvm {

Workload::Workload(const WorkloadConfig &cfg)
    : cfg_(cfg), rng_(cfg.seed),
      zipf_(cfg.key_space, cfg.zipf_theta, cfg.seed ^ 0x5a5a)
{}

Key
Workload::nextKey()
{
    const uint64_t rank = cfg_.dist == KeyDist::Zipf
                              ? zipf_.next()
                              : rng_.nextBounded(cfg_.key_space);
    // Rank 0 is the hottest item under Zipf; hashing scatters ranks over
    // the key space without changing popularity, like hashed trace keys.
    if (!cfg_.hashed_keys)
        return rank + 1;
    return (mix64(rank) % (cfg_.key_space * 16)) + 1;
}

WorkItem
Workload::next()
{
    WorkItem item;
    item.op = rng_.nextDouble() < cfg_.put_ratio ? WorkOp::Put
                                                 : WorkOp::Get;
    item.key = nextKey();
    item.value = Value::ofU64(rng_.next());
    return item;
}

std::vector<WorkItem>
Workload::generate(uint64_t n)
{
    std::vector<WorkItem> out;
    out.reserve(n);
    for (uint64_t i = 0; i < n; ++i)
        out.push_back(next());
    return out;
}

} // namespace asymnvm
