#ifndef ASYMNVM_WORKLOAD_WORKLOAD_H_
#define ASYMNVM_WORKLOAD_WORKLOAD_H_

/**
 * @file
 * Workload generators for the evaluation (Section 9).
 *
 * Two families stand in for the paper's drivers:
 *  - A YCSB-style generator (Section 9.6 / Figure 12): configurable
 *    put/get mix with uniform or Zipf-distributed keys.
 *  - An "industry" generator standing in for the Alibaba online-service
 *    traces of Figure 13: power-law key popularity (the paper reports
 *    the traces follow a power-law distribution) with hashed keys.
 */

#include <cstdint>
#include <vector>

#include "common/rand.h"
#include "common/types.h"
#include "common/zipf.h"

namespace asymnvm {

/** Kinds of operations a workload emits. */
enum class WorkOp : uint8_t
{
    Put,
    Get,
};

/** One generated operation. */
struct WorkItem
{
    WorkOp op;
    Key key;
    Value value;
};

/** Key distributions supported by the generators. */
enum class KeyDist : uint8_t
{
    Uniform,
    Zipf,
};

/** Configuration of a key/value workload. */
struct WorkloadConfig
{
    uint64_t key_space = 100000; //!< distinct keys
    double put_ratio = 1.0;      //!< fraction of Put operations
    KeyDist dist = KeyDist::Uniform;
    double zipf_theta = 0.99;
    uint64_t seed = 2024;
    bool hashed_keys = true; //!< scatter keys (industry traces hash keys)
};

/** Streaming generator of key/value operations. */
class Workload
{
  public:
    explicit Workload(const WorkloadConfig &cfg);

    /** Next operation. */
    WorkItem next();

    /** Pre-generate @p n operations (deterministic given the seed). */
    std::vector<WorkItem> generate(uint64_t n);

    const WorkloadConfig &config() const { return cfg_; }

  private:
    Key nextKey();

    WorkloadConfig cfg_;
    Rng rng_;
    ZipfGenerator zipf_;
};

} // namespace asymnvm

#endif // ASYMNVM_WORKLOAD_WORKLOAD_H_
