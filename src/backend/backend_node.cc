#include "backend/backend_node.h"

#include <algorithm>
#include <cassert>

#include "rdma/rpc.h"
#include <cstring>
#include <stdexcept>

namespace asymnvm {

namespace {

/** Advance a monotonic ring position past the current ring lap. */
uint64_t
ringSkipToWrap(uint64_t pos, uint64_t ring_size)
{
    return (pos / ring_size + 1) * ring_size;
}

/** True when @p type uses the seqlock reader protocol (Section 6.3). */
bool
isLockBased(DsType type)
{
    switch (type) {
      case DsType::MvBst:
      case DsType::MvBpTree:
        return false;
      default:
        return true;
    }
}

} // namespace

BackendNode::BackendNode(NodeId id, const BackendConfig &cfg,
                         const LatencyModel &lat)
    : id_(id), cfg_(cfg), lat_(lat), layout_(Layout::compute(cfg)),
      device_(std::make_shared<NvmDevice>(cfg.nvm_size)),
      nic_(lat.nic_verb_service_ns)
{
    nic_.setQos(cfg_.nic_qos);
    // Format: the fresh device is zero-filled, so only the superblock
    // needs explicit initialization.
    layout_.super.epoch = 1;
    device_->write(0, &layout_.super, sizeof(SuperBlock));
    device_->persist();
    layoutEpoch_ = 1;

    controls_.assign(cfg_.max_frontends, LogControl{});
    slot_session_.assign(cfg_.max_frontends, 0);
    names_.assign(cfg_.max_names, NamingEntry{});
    op_window_.assign(cfg_.max_frontends, {});
    rpc_served_seq_.assign(cfg_.max_frontends, 0);
    rpc_last_resp_.assign(cfg_.max_frontends, RpcResponse{});
    // The allocator writes bitmap words through writeLocal so mirror
    // replication sees every allocation-state change.
    allocator_ = std::make_unique<BackendAllocator>(
        device_.get(), layout_,
        [this](uint64_t off, const void *src, size_t len) {
            writeLocal(off, src, len);
        });
}

BackendNode::BackendNode(NodeId id, const BackendConfig &cfg,
                         std::shared_ptr<NvmDevice> device,
                         const LatencyModel &lat)
    : id_(id), cfg_(cfg), lat_(lat), layout_(Layout::compute(cfg)),
      device_(std::move(device)), nic_(lat.nic_verb_service_ns)
{
    nic_.setQos(cfg_.nic_qos);
    SuperBlock sb;
    device_->read(0, &sb, sizeof(sb));
    if (sb.magic != kSuperMagic)
        throw std::runtime_error("BackendNode: device is not formatted");
    if (sb.block_size != cfg.block_size ||
        sb.max_frontends != cfg.max_frontends) {
        throw std::runtime_error("BackendNode: config mismatch on open");
    }
    layout_.super = sb;
    allocator_ = std::make_unique<BackendAllocator>(
        device_.get(), layout_,
        [this](uint64_t off, const void *src, size_t len) {
            writeLocal(off, src, len);
        });
    loadVolatileState();
    // Fence off the previous incarnation.
    layoutEpoch_ = sb.epoch + 1;
    layout_.super.epoch = layoutEpoch_;
    writeLocal(0, &layout_.super, sizeof(SuperBlock));
    rollTailsForward();
}

void
BackendNode::addMirror(MirrorNode *mirror)
{
    std::lock_guard lock(mu_);
    // Bring the mirror replica up to date with a full device image; from
    // here on, incremental writes keep it in sync (pre-commit shipping).
    std::vector<uint8_t> image(device_->size());
    device_->read(0, image.data(), image.size());
    mirror->applyWrite(0, image.data(), image.size());
    mirrors_.push_back(mirror);
}

void
BackendNode::removeMirror(MirrorNode *mirror)
{
    std::lock_guard lock(mu_);
    std::erase(mirrors_, mirror);
}

void
BackendNode::stageReplicationLocked(uint64_t off, size_t len)
{
    if (mirrors_.empty() || len == 0)
        return;
    ++repl_batch_.raw_writes;
    ReplBatch &b = repl_batch_;
    // A write that continues exactly where the previous range ended
    // extends it (ring appends, sequential replay) — the byte-range
    // analogue of the post list's scatter-gather merge. The extended
    // range's payload stays contiguous because its bytes are always the
    // buffer tail.
    if (!b.ranges.empty()) {
        ReplBatch::Range &last = b.ranges.back();
        if (off == last.off + last.len) {
            const size_t at = b.buf.size();
            b.buf.resize(at + len);
            device_->read(off, b.buf.data() + at, len);
            last.len += static_cast<uint32_t>(len);
            return;
        }
    }
    // An exact re-write of a staged range refreshes it in place (the
    // control block is written twice per transaction; one range ships).
    auto it = b.index.find(off);
    if (it != b.index.end()) {
        ReplBatch::Range &r = b.ranges[it->second];
        if (r.len == len) {
            device_->read(off, b.buf.data() + r.buf_off, len);
            return;
        }
    }
    ReplBatch::Range r;
    r.off = off;
    r.len = static_cast<uint32_t>(len);
    r.buf_off = static_cast<uint32_t>(b.buf.size());
    b.buf.resize(b.buf.size() + len);
    device_->read(off, b.buf.data() + r.buf_off, len);
    b.index[off] = b.ranges.size();
    b.ranges.push_back(r);
}

bool
BackendNode::shipBatchToMirror(MirrorNode *m, uint64_t now_ns)
{
    uint64_t backoff = repl_retry_.base_backoff_ns;
    for (uint32_t attempt = 0; attempt < repl_retry_.max_attempts;
         ++attempt) {
        if (m->faults().armed()) {
            const FaultAction a =
                m->faults().onVerb(FaultVerb::Write, now_ns);
            if (a.qp_error || a.drop) {
                // The transfer (or its completion) was lost: pay the
                // detection timeout plus backoff in back-end time and
                // re-ship. The batch is idempotent — a drop_after that
                // landed bytes before the loss just gets them again.
                ++repl_stats_.retries;
                const uint64_t wait =
                    repl_retry_.verb_timeout_ns + backoff;
                repl_stats_.backoff_ns += wait;
                busy_ns_.add(wait);
                backoff = std::min<uint64_t>(backoff * 2,
                                             repl_retry_.max_backoff_ns);
                continue;
            }
            busy_ns_.add(a.delay_ns + a.slow_ns);
        }
        for (const ReplBatch::Range &r : repl_batch_.ranges)
            m->stageWrite(r.off, repl_batch_.buf.data() + r.buf_off,
                          r.len);
        m->persistBatch();
        return true;
    }
    return false;
}

void
BackendNode::flushReplicationLocked(uint64_t now_ns)
{
    if (repl_batch_.empty())
        return;
    if (mirrors_.empty()) {
        repl_batch_.clear();
        return;
    }
    ++repl_stats_.batches;
    repl_stats_.raw_writes += repl_batch_.raw_writes;
    repl_stats_.ranges += repl_batch_.ranges.size();
    const uint64_t batch_bytes = repl_batch_.buf.size();

    std::vector<MirrorNode *> dead;
    for (MirrorNode *m : mirrors_) {
        if (shipBatchToMirror(m, now_ns)) {
            ++repl_stats_.persists;
            repl_stats_.bytes += batch_bytes;
        } else {
            // A replication storm outlived every retry: detach the
            // mirror (Case 5) rather than wedging the commit — the
            // cluster will re-attach a fresh replica with a full-image
            // sync.
            dead.push_back(m);
        }
    }
    for (MirrorNode *m : dead) {
        std::erase(mirrors_, m);
        ++repl_stats_.mirrors_dropped;
    }
    // Modeled batch latency: one chained RDMA transfer plus one remote
    // persist fence; posting it is back-end CPU time.
    uint64_t queue_ns = 0;
    if (nic_.qosEnabled() && now_ns != 0) {
        // Replication shipping shares the NIC with foreground verbs. The
        // per-QP model accounts the batch as one Background-class burst
        // on this node's shipper QP — so a storm of it is visible to (and
        // rate-capped against) live sessions. The legacy scalar model
        // never charged replication here; keeping that path unchanged
        // preserves every pre-existing result bit-identically. now_ns==0
        // marks control-path flushes with no session clock to anchor to.
        queue_ns = nic_.reserveBatch(repl_batch_.ranges.size(), now_ns,
                                     kShipperQpBase + id_,
                                     VerbClass::Background);
    }
    repl_hist_.record(queue_ns + lat_.rdma_write_rtt_ns +
                      lat_.wireBytes(batch_bytes) + lat_.persist_fence_ns);
    busy_ns_.add(lat_.post_overhead_ns);
    repl_batch_.clear();
}

void
BackendNode::flushReplication()
{
    std::lock_guard lock(mu_);
    flushReplicationLocked(0);
}

void
BackendNode::noteRemoteWrite(uint64_t off, size_t len)
{
    std::lock_guard lock(mu_);
    stageReplicationLocked(off, len);
}

void
BackendNode::writeLocal(uint64_t off, const void *src, size_t len)
{
    device_->write(off, src, len);
    device_->persist();
    stageReplicationLocked(off, len);
}

void
BackendNode::writeLocal64(uint64_t off, uint64_t v)
{
    device_->write64Atomic(off, v);
    stageReplicationLocked(off, sizeof(v));
}

void
BackendNode::zeroConsumedRecordLocked(uint64_t ring_base,
                                      uint64_t ring_size, uint64_t pos,
                                      uint32_t len, uint32_t expect_magic)
{
    if (len == 0 || len > ring_size)
        return;
    const uint64_t abs = ringReadAbs(ring_base, ring_size, pos);
    uint32_t magic = 0;
    device_->read(abs, &magic, sizeof(magic));
    if (magic != expect_magic)
        return;
    static const std::vector<uint8_t> kZeros(4096, 0);
    uint64_t done = 0;
    while (done < len) {
        const uint64_t n = std::min<uint64_t>(len - done, kZeros.size());
        device_->write(abs + done, kZeros.data(), n);
        done += n;
    }
    device_->persist();
    // Mirrors replicate raw ranges, so the zeroed bytes ship like any
    // other back-end write and replicas stay byte-identical.
    stageReplicationLocked(abs, len);
    busy_ns_.add(lat_.nvm_write_ns * ((len + 63) / 64));
}

void
BackendNode::writeControl(uint32_t slot)
{
    // The lock-ahead word is written one-sided by the front-end (it must
    // persist *before* the memory logs it covers, Section 6.1); refresh
    // it from NVM so rewriting the block does not clobber it.
    const uint64_t off = layout_.logControlOff(slot);
    controls_[slot].lock_ahead =
        device_->read64(off + offsetof(LogControl, lock_ahead));
    writeLocal(off, &controls_[slot], sizeof(LogControl));
}

void
BackendNode::loadVolatileState()
{
    controls_.assign(cfg_.max_frontends, LogControl{});
    slot_session_.assign(cfg_.max_frontends, 0);
    names_.assign(cfg_.max_names, NamingEntry{});
    op_window_.assign(cfg_.max_frontends, {});
    rpc_served_seq_.assign(cfg_.max_frontends, 0);
    rpc_last_resp_.assign(cfg_.max_frontends, RpcResponse{});

    for (uint32_t i = 0; i < cfg_.max_names; ++i)
        device_->read(layout_.namingEntryOff(i), &names_[i],
                      sizeof(NamingEntry));

    for (uint32_t s = 0; s < cfg_.max_frontends; ++s) {
        device_->read(layout_.logControlOff(s), &controls_[s],
                      sizeof(LogControl));
        slot_session_[s] = controls_[s].session_epoch;

        // Rebuild the uncovered op-log window by scanning the ring from
        // the persisted tail to the head.
        const LogControl &c = controls_[s];
        const uint64_t ring = layout_.super.oplog_ring_size;
        const uint64_t base = layout_.oplogRingOff(s);
        uint64_t pos = c.oplog_tail;
        while (pos < c.oplog_head) {
            const uint64_t off_in_ring = pos % ring;
            const uint64_t contiguous = ring - off_in_ring;
            if (contiguous < kMinOpLogWire) {
                pos = ringSkipToWrap(pos, ring);
                continue;
            }
            uint32_t magic;
            device_->read(base + off_in_ring, &magic, sizeof(magic));
            if (magic == kSkipMagic) {
                pos = ringSkipToWrap(pos, ring);
                continue;
            }
            std::vector<uint8_t> buf(contiguous);
            device_->read(base + off_in_ring, buf.data(), buf.size());
            auto rec = decodeOpLog({buf.data(), buf.size()});
            if (!rec.has_value())
                break; // torn tail; handled by rollTailsForward
            op_window_[s].push_back(
                {rec->opn, pos, static_cast<uint32_t>(rec->wire_len)});
            pos += rec->wire_len;
        }
    }
    allocator_->recover();
}

void
BackendNode::rollTailsForward()
{
    for (uint32_t s = 0; s < cfg_.max_frontends; ++s) {
        if (slot_session_[s] == 0)
            continue;
        // Op-log tail first: a valid record beyond the recorded head means
        // the append landed but the control update did not survive.
        while (true) {
            LogControl &c = controls_[s];
            const uint64_t ring = layout_.super.oplog_ring_size;
            const uint64_t base = layout_.oplogRingOff(s);
            uint64_t pos = c.oplog_head;
            uint64_t off_in_ring = pos % ring;
            if (ring - off_in_ring < kMinOpLogWire) {
                pos = ringSkipToWrap(pos, ring);
                off_in_ring = pos % ring;
            }
            std::vector<uint8_t> buf(ring - off_in_ring);
            device_->read(base + off_in_ring, buf.data(), buf.size());
            auto rec = decodeOpLog({buf.data(), buf.size()});
            if (!rec.has_value() || rec->opn != c.opn)
                break;
            const bool was_empty = op_window_[s].empty();
            op_window_[s].push_back(
                {rec->opn, pos, static_cast<uint32_t>(rec->wire_len)});
            if (was_empty)
                c.oplog_tail = pos;
            c.oplog_head = pos + rec->wire_len;
            c.opn = rec->opn + 1;
            writeControl(s);
        }
        // Memory-log tail: roll a fully persisted (checksummed) trailing
        // transaction forward; a torn one is simply ignored — the front-
        // end never received its ack and will re-flush (Case 3.b).
        recoverTailTx(s);
    }
}

TxValidation
BackendNode::recoverTailTx(uint32_t slot)
{
    const TxValidation v = validateTail(slot);
    if (v != TxValidation::Clean)
        return v;
    const LogControl &c = controls_[slot];
    const uint64_t ring = layout_.super.memlog_ring_size;
    const uint64_t base = layout_.memlogRingOff(slot);
    uint64_t pos = c.memlog_head;
    uint64_t off_in_ring = pos % ring;
    if (ring - off_in_ring < kMinTxWire) {
        pos = ringSkipToWrap(pos, ring);
        off_in_ring = pos % ring;
    } else {
        uint32_t magic;
        device_->read(base + off_in_ring, &magic, sizeof(magic));
        if (magic == kSkipMagic) {
            pos = ringSkipToWrap(pos, ring);
            off_in_ring = pos % ring;
        }
    }
    TxHeader hdr;
    device_->read(base + off_in_ring, &hdr, sizeof(hdr));
    const uint32_t len = static_cast<uint32_t>(txWireLen(hdr));
    onTxAppended(slot, pos, len, 0);
    return v;
}

Status
BackendNode::registerFrontend(uint64_t session_id, uint32_t *slot)
{
    std::lock_guard lock(mu_);
    if (session_id == 0)
        return Status::InvalidArgument;
    for (uint32_t s = 0; s < cfg_.max_frontends; ++s) {
        if (slot_session_[s] == session_id) {
            *slot = s; // reconnect after a front-end crash
            return Status::Ok;
        }
    }
    for (uint32_t s = 0; s < cfg_.max_frontends; ++s) {
        if (slot_session_[s] == 0) {
            slot_session_[s] = session_id;
            controls_[s] = LogControl{};
            controls_[s].session_epoch = session_id;
            writeControl(s);
            flushReplicationLocked(0);
            *slot = s;
            return Status::Ok;
        }
    }
    return Status::Unavailable;
}

void
BackendNode::unregisterFrontend(uint32_t slot)
{
    std::lock_guard lock(mu_);
    if (slot >= cfg_.max_frontends)
        return;
    slot_session_[slot] = 0;
    controls_[slot] = LogControl{};
    writeControl(slot);
    op_window_[slot].clear();
    flushReplicationLocked(0);
}

LogControl
BackendNode::readControl(uint32_t slot) const
{
    std::lock_guard lock(mu_);
    return controls_[slot];
}

uint64_t
BackendNode::ringReadAbs(uint64_t ring_base, uint64_t ring_size,
                         uint64_t pos) const
{
    return ring_base + pos % ring_size;
}

Status
BackendNode::onOpLogAppended(uint32_t slot, uint64_t pos, uint32_t len,
                             uint64_t now_ns, bool fenced)
{
    std::lock_guard lock(mu_);
    if (slot >= cfg_.max_frontends || slot_session_[slot] == 0)
        return Status::InvalidArgument;
    LogControl &c = controls_[slot];
    const uint64_t ring = layout_.super.oplog_ring_size;
    const uint64_t abs = ringReadAbs(layout_.oplogRingOff(slot), ring, pos);

    std::vector<uint8_t> buf(len);
    device_->read(abs, buf.data(), len);
    auto rec = decodeOpLog({buf.data(), buf.size()});
    if (!rec.has_value())
        return Status::Corruption;

    // Stage the raw log bytes for mirror replication (the posted write
    // already staged them via on_write; this refreshes the same range, so
    // only one range ships). Unlike the control-block persist, shipping
    // cannot defer past this call even for unfenced appends: restart
    // recovery rolls any decodable record beyond the persisted head
    // forward, which makes every landed op-log record individually
    // recoverable — so the mirror must hold it before promotion could be
    // asked to (replicate-before-ack, Section 7.1).
    stageReplicationLocked(abs, len);

    if (op_window_[slot].empty())
        c.oplog_tail = pos;
    op_window_[slot].push_back({rec->opn, pos, len});
    c.oplog_head = pos + len;
    c.opn = rec->opn + 1;
    // A doorbell-batched (unfenced) append defers the control-block
    // persist to the batch commit: the next onTxAppended (or fenced
    // append) writes the accumulated positions in one NVM write instead
    // of one per record. Restart recovery rolls any decodable records
    // beyond a stale persisted head forward, and unfenced records were
    // never individually acked, so nothing durable is promised early.
    if (fenced)
        writeControl(slot);

    busy_ns_.add(lat_.cpu_op_overhead_ns + len / 8);
    processGcLocked(now_ns, false);
    flushReplicationLocked(now_ns);
    return Status::Ok;
}

Status
BackendNode::onTxAppended(uint32_t slot, uint64_t pos, uint32_t len,
                          uint64_t now_ns)
{
    std::lock_guard lock(mu_);
    if (slot >= cfg_.max_frontends || slot_session_[slot] == 0)
        return Status::InvalidArgument;
    LogControl &c = controls_[slot];
    const uint64_t ring = layout_.super.memlog_ring_size;
    const uint64_t abs = ringReadAbs(layout_.memlogRingOff(slot), ring, pos);

    std::vector<uint8_t> buf(len);
    device_->read(abs, buf.data(), len);
    auto tx = TxParser::parse({buf.data(), buf.size()});
    if (!tx.has_value())
        return Status::Corruption;

    // Stage the transaction bytes; everything the replay below writes
    // (data blocks, SN bumps, control updates) joins the same batch and
    // ships to each mirror as ONE chained transfer with ONE persist fence
    // before this call returns — i.e. before the commit is acknowledged.
    stageReplicationLocked(abs, len);

    // For the zero-based encoding the back-end owns re-zeroing consumed
    // ring bytes; remember what this commit retires (the previous —
    // fully applied — transaction and every op-log record the coverage
    // advance pops) before the control fields move past them.
    const bool zb = tx->format() == LogFormatKind::ZeroBased;
    const uint64_t prev_tx_off = c.last_tx_off;
    const uint32_t prev_tx_len = static_cast<uint32_t>(c.last_tx_len);

    c.memlog_head = pos + len;
    c.last_tx_off = pos;
    c.last_tx_len = len;
    c.lpn = tx->header().lpn + 1;
    c.covered_opn = std::max(c.covered_opn, tx->header().covered_opn);
    auto &window = op_window_[slot];
    std::vector<OpWindowItem> popped;
    while (!window.empty() && window.front().opn < c.covered_opn) {
        if (zb)
            popped.push_back(window.front());
        window.pop_front();
    }
    c.oplog_tail = window.empty() ? c.oplog_head : window.front().pos;
    writeControl(slot);

    replayTx(slot, *tx);
    c.memlog_applied = c.memlog_head;

    if (zb) {
        // Zero retired records only while their bytes are provably not
        // lapped by newer appends (head − pos ≤ ring); the magic guard
        // inside the helper re-checks against re-delivery races.
        if (prev_tx_len > 0 && c.memlog_head - prev_tx_off <= ring)
            zeroConsumedRecordLocked(layout_.memlogRingOff(slot), ring,
                                     prev_tx_off, prev_tx_len, kTxMagicZb);
        const uint64_t oring = layout_.super.oplog_ring_size;
        for (const OpWindowItem &item : popped) {
            if (c.oplog_head - item.pos <= oring)
                zeroConsumedRecordLocked(layout_.oplogRingOff(slot), oring,
                                         item.pos, item.len, kOpMagicZb);
        }
    }
    writeControl(slot);

    replayed_txs_.add();
    processGcLocked(now_ns, false);
    // Group-commit replication: one batched ship + persist per committed
    // transaction, strictly before the front-end sees the ack.
    flushReplicationLocked(now_ns);
    return Status::Ok;
}

void
BackendNode::replayTx(uint32_t slot, const TxParser &tx)
{
    const uint64_t ds = tx.header().ds_id;
    const bool bump_sn =
        ds < names_.size() &&
        isLockBased(static_cast<DsType>(names_[ds].type));
    const uint64_t sn_off = layout_.namingEntryOff(static_cast<DsId>(ds)) +
                            naming_field::kSeqNum;
    if (bump_sn) {
        // Write_Begin (Algorithm 2): SN becomes odd while replaying.
        names_[ds].seq_num += 1;
        writeLocal64(sn_off, names_[ds].seq_num);
    }
    std::vector<uint8_t> tmp;
    for (const ParsedMemLog &m : tx.entries()) {
        assert(m.addr.backend == id_);
        const uint8_t *src = m.inline_value;
        if (m.flag == MemLogFlag::kOpRef) {
            // Fetch the value bytes from the already persisted op log.
            // The referenced record identifies its own encoding, so read
            // enough raw bytes to cover the slice in any format and let
            // extractOpLogValue locate (and, for zero-based records,
            // de-stuff) the value. Records never straddle the ring wrap,
            // so clamping to the contiguous remainder never truncates a
            // valid reference.
            const uint64_t ring = layout_.super.oplog_ring_size;
            const uint64_t abs =
                ringReadAbs(layout_.oplogRingOff(slot), ring, m.oplog_off);
            const uint64_t span =
                std::min<uint64_t>(opLogValueSpanBytes(m.val_off, m.len),
                                   ring - m.oplog_off % ring);
            std::vector<uint8_t> rec(span);
            device_->read(abs, rec.data(), span);
            tmp.assign(m.len, 0);
            extractOpLogValue({rec.data(), rec.size()}, m.val_off, m.len,
                              tmp.data());
            src = tmp.data();
        }
        writeLocal(m.addr.offset, src, m.len);
        replayed_entries_.add();
        busy_ns_.add(lat_.cpu_log_replay_ns + lat_.nvm_write_ns);
    }
    if (bump_sn) {
        // Write_End: SN even again, readers revalidate.
        names_[ds].seq_num += 1;
        writeLocal64(sn_off, names_[ds].seq_num);
    }
}

Status
BackendNode::handleRpc(uint32_t slot)
{
    if (slot >= cfg_.max_frontends)
        return Status::InvalidArgument;
    const uint64_t req_off = layout_.rpcReqRingOff(slot);
    RpcRequest req;
    device_->read(req_off, &req, sizeof(req));
    if (req.magic != kRpcReqMagic)
        return Status::Corruption;
    if (sizeof(req) + req.payload_len > layout_.super.rpc_ring_size)
        return Status::Corruption; // length torn: don't trust it
    std::vector<uint8_t> payload(req.payload_len);
    if (req.payload_len > 0)
        device_->read(req_off + sizeof(req), payload.data(),
                      req.payload_len);
    // A torn or corrupt request must not execute: reject, and let the
    // client rewrite it (same seq) and poke again.
    if (rpcRequestChecksum(req, {payload.data(), payload.size()}) !=
        req.checksum)
        return Status::Corruption;
    // Idempotent resend: the client lost our response, not the request.
    // Serve the repeat from the stored response without re-executing.
    if (req.seq != 0 && rpc_served_seq_[slot] == req.seq) {
        device_->write(layout_.rpcRespRingOff(slot), &rpc_last_resp_[slot],
                       sizeof(RpcResponse));
        device_->persist();
        std::lock_guard lock(mu_);
        stageReplicationLocked(layout_.rpcRespRingOff(slot),
                               sizeof(RpcResponse));
        flushReplicationLocked(0);
        return Status::Ok;
    }

    RpcResponse resp{};
    resp.magic = kRpcRespMagic;
    resp.seq = req.seq;
    Status st = Status::InvalidArgument;
    switch (static_cast<RpcOp>(req.op)) {
      case RpcOp::AllocBlocks:
        st = rpcAllocBlocks(req.args[0], &resp.rets[0]);
        break;
      case RpcOp::FreeBlocks:
        st = rpcFreeBlocks(req.args[0], req.args[1]);
        break;
      case RpcOp::CreateName: {
        DsId id = 0;
        st = rpcCreateName(req.args[0],
                           static_cast<DsType>(req.args[1]), &id);
        resp.rets[0] = id;
        break;
      }
      case RpcOp::LookupName: {
        DsId id = 0;
        DsType type = DsType::None;
        st = rpcLookupName(req.args[0], &id, &type);
        resp.rets[0] = id;
        resp.rets[1] = static_cast<uint64_t>(type);
        break;
      }
      case RpcOp::Retire: {
        const uint64_t count = req.args[1];
        if (payload.size() != count * 2 * sizeof(uint64_t))
            break;
        std::vector<std::pair<uint64_t, uint64_t>> regions(count);
        for (uint64_t i = 0; i < count; ++i) {
            std::memcpy(&regions[i].first,
                        payload.data() + i * 16, 8);
            std::memcpy(&regions[i].second,
                        payload.data() + i * 16 + 8, 8);
        }
        st = rpcRetire(static_cast<DsId>(req.args[0]), regions,
                       req.args[2]);
        break;
      }
      case RpcOp::None:
        break;
    }
    resp.status = static_cast<uint32_t>(st);
    rpc_served_seq_[slot] = req.seq;
    rpc_last_resp_[slot] = resp;
    device_->write(layout_.rpcRespRingOff(slot), &resp, sizeof(resp));
    device_->persist();
    // Replicate the whole RPC's effects — allocator bitmap words, naming
    // entries, GC epochs, and the response ring itself — as one batch.
    // (The response ring is scratch for recovery purposes, but shipping
    // it keeps the mirror byte-identical with the back-end device.)
    std::lock_guard lock(mu_);
    stageReplicationLocked(layout_.rpcRespRingOff(slot), sizeof(resp));
    flushReplicationLocked(0);
    return Status::Ok;
}

Status
BackendNode::rpcAllocBlocks(uint64_t nblocks, uint64_t *off)
{
    std::lock_guard lock(mu_);
    rpc_calls_.add();
    busy_ns_.add(lat_.cpu_op_overhead_ns + lat_.nvm_write_ns);
    const Status st = allocator_->alloc(nblocks, off);
    flushReplicationLocked(0);
    return st;
}

Status
BackendNode::rpcFreeBlocks(uint64_t off, uint64_t nblocks)
{
    std::lock_guard lock(mu_);
    rpc_calls_.add();
    busy_ns_.add(lat_.cpu_op_overhead_ns + lat_.nvm_write_ns);
    const Status st = allocator_->free(off, nblocks);
    flushReplicationLocked(0);
    return st;
}

Status
BackendNode::rpcRetire(DsId ds,
                       std::span<const std::pair<uint64_t, uint64_t>>
                           regions,
                       uint64_t now_ns)
{
    std::lock_guard lock(mu_);
    rpc_calls_.add();
    if (!regions.empty())
        gc_queue_.push_back({now_ns + cfg_.gc_delay_ns, ds});
    processGcLocked(now_ns, false);
    flushReplicationLocked(now_ns);
    return Status::Ok;
}

Status
BackendNode::rpcCreateName(uint64_t name_hash, DsType type, DsId *id)
{
    std::lock_guard lock(mu_);
    rpc_calls_.add();
    if (name_hash == 0)
        return Status::InvalidArgument;
    for (uint32_t i = 0; i < cfg_.max_names; ++i) {
        if (names_[i].name_hash == name_hash)
            return Status::Exists;
    }
    for (uint32_t i = 0; i < cfg_.max_names; ++i) {
        if (names_[i].name_hash == 0) {
            NamingEntry e{};
            e.name_hash = name_hash;
            e.type = static_cast<uint32_t>(type);
            names_[i] = e;
            writeLocal(layout_.namingEntryOff(i), &e, sizeof(e));
            flushReplicationLocked(0);
            *id = i;
            return Status::Ok;
        }
    }
    return Status::OutOfMemory;
}

Status
BackendNode::rpcLookupName(uint64_t name_hash, DsId *id, DsType *type) const
{
    std::lock_guard lock(mu_);
    for (uint32_t i = 0; i < cfg_.max_names; ++i) {
        if (names_[i].name_hash == name_hash) {
            *id = i;
            if (type != nullptr)
                *type = static_cast<DsType>(names_[i].type);
            return Status::Ok;
        }
    }
    return Status::NotFound;
}

TxValidation
BackendNode::validateTail(uint32_t slot)
{
    std::lock_guard lock(mu_);
    const LogControl &c = controls_[slot];
    const uint64_t ring = layout_.super.memlog_ring_size;
    const uint64_t base = layout_.memlogRingOff(slot);
    uint64_t pos = c.memlog_head;
    uint64_t off_in_ring = pos % ring;
    if (ring - off_in_ring < kMinTxWire) {
        pos = ringSkipToWrap(pos, ring);
        off_in_ring = pos % ring;
    }
    TxHeader hdr;
    device_->read(base + off_in_ring, &hdr, sizeof(hdr));
    if (hdr.magic == kSkipMagic) {
        pos = ringSkipToWrap(pos, ring);
        off_in_ring = pos % ring;
        device_->read(base + off_in_ring, &hdr, sizeof(hdr));
    }
    if (!txMagicKind(hdr.magic).has_value() || hdr.lpn != c.lpn)
        return TxValidation::None; // nothing (or only stale bytes) there
    const uint64_t max_len = ring - off_in_ring;
    const uint64_t need = txWireLen(hdr);
    if (need > max_len)
        return TxValidation::Torn;
    std::vector<uint8_t> buf(need);
    device_->read(base + off_in_ring, buf.data(), need);
    return TxParser::parse({buf.data(), buf.size()}).has_value()
               ? TxValidation::Clean
               : TxValidation::Torn;
}

std::vector<ParsedOpLog>
BackendNode::uncoveredOps(uint32_t slot) const
{
    std::lock_guard lock(mu_);
    std::vector<ParsedOpLog> out;
    const uint64_t ring = layout_.super.oplog_ring_size;
    const uint64_t base = layout_.oplogRingOff(slot);
    for (const OpWindowItem &item : op_window_[slot]) {
        std::vector<uint8_t> buf(item.len);
        device_->read(base + item.pos % ring, buf.data(), item.len);
        auto rec = decodeOpLog({buf.data(), buf.size()});
        if (rec.has_value())
            out.push_back(std::move(*rec));
    }
    return out;
}

uint64_t
BackendNode::opWindowSize(uint32_t slot) const
{
    std::lock_guard lock(mu_);
    return op_window_[slot].size();
}

void
BackendNode::releaseStaleLocks(uint32_t slot)
{
    std::lock_guard lock(mu_);
    // The lock-ahead word is written one-sided by front-ends; NVM is the
    // authoritative copy.
    const uint64_t lock_ahead = device_->read64(
        layout_.logControlOff(slot) + offsetof(LogControl, lock_ahead));
    if (lock_ahead == 0)
        return;
    const DsId ds = static_cast<DsId>(lock_ahead - 1);
    if (ds < names_.size()) {
        const uint64_t lock_off =
            layout_.namingEntryOff(ds) + naming_field::kWriterLock;
        const uint64_t holder = device_->read64(lock_off);
        if (holder == static_cast<uint64_t>(slot) + 1) {
            names_[ds].writer_lock = 0;
            writeLocal64(lock_off, 0);
        }
    }
    controls_[slot].lock_ahead = 0;
    writeLocal64(layout_.logControlOff(slot) +
                     offsetof(LogControl, lock_ahead),
                 0);
    flushReplicationLocked(0);
}

void
BackendNode::processGc(uint64_t now_ns, bool force)
{
    std::lock_guard lock(mu_);
    processGcLocked(now_ns, force);
    flushReplicationLocked(now_ns);
}

void
BackendNode::processGcLocked(uint64_t now_ns, bool force)
{
    // Doorbell-batched log appends arrive with one shared timestamp; a
    // rescan at an unchanged virtual time can only find work if the queue
    // front is actually due (retire delays may be zero in tests).
    if (!force && now_ns == last_gc_scan_ns_ &&
        (gc_queue_.empty() || gc_queue_.front().reclaim_at_ns > now_ns))
        return;
    last_gc_scan_ns_ = now_ns;
    bool bumped[64] = {};
    bool any = false;
    while (!gc_queue_.empty() &&
           (force || gc_queue_.front().reclaim_at_ns <= now_ns)) {
        const GcItem item = gc_queue_.front();
        gc_queue_.pop_front();
        if (item.ds < 64 && !bumped[item.ds]) {
            bumped[item.ds] = true;
            any = true;
        }
    }
    if (!any)
        return;
    // Reclaimed memory may now be reused: bump gc_epoch so that front-end
    // caches holding nodes of the retired versions invalidate themselves.
    for (DsId ds = 0; ds < 64 && ds < names_.size(); ++ds) {
        if (!bumped[ds])
            continue;
        names_[ds].gc_epoch += 1;
        writeLocal64(layout_.namingEntryOff(ds) + naming_field::kGcEpoch,
                     names_[ds].gc_epoch);
    }
}

NamingEntry
BackendNode::namingEntry(DsId id) const
{
    // Read from NVM: fields like the writer lock are updated one-sided
    // by front-ends, so the volatile shadow may be stale for them.
    NamingEntry e;
    device_->read(layout_.namingEntryOff(id), &e, sizeof(e));
    return e;
}

DsType
BackendNode::dsType(DsId id) const
{
    std::lock_guard lock(mu_);
    return static_cast<DsType>(names_.at(id).type);
}

uint32_t
BackendNode::nameCount() const
{
    std::lock_guard lock(mu_);
    uint32_t n = 0;
    for (const NamingEntry &e : names_)
        n += e.name_hash != 0;
    return n;
}

uint64_t
BackendNode::gcPending() const
{
    std::lock_guard lock(mu_);
    return gc_queue_.size();
}

void
BackendNode::resetStats()
{
    busy_ns_.reset();
    replayed_txs_.reset();
    replayed_entries_.reset();
    rpc_calls_.reset();
    nic_.resetStats();
    repl_stats_ = ReplicationStats{};
    repl_hist_ = Histogram{};
}

} // namespace asymnvm
