#ifndef ASYMNVM_BACKEND_BACKEND_NODE_H_
#define ASYMNVM_BACKEND_BACKEND_NODE_H_

/**
 * @file
 * The back-end NVM node.
 *
 * A back-end node is *passive*: it never initiates communication. Front-
 * ends read and write its NVM through one-sided verbs; the small fixed set
 * of functions it does run — log validation and replay, slab allocation,
 * naming, lazy garbage collection, replication to mirror nodes — is the
 * paper's "simple and fixed API" (Section 3.2/3.3), modeled here as
 * handlers the transport invokes after a verb lands (onTxAppended /
 * onOpLogAppended) plus RFP-RPC handlers (Section 5.1).
 *
 * All durable state lives in the NvmDevice laid out per backend/layout.h;
 * every volatile structure (allocator rover, op-log window, naming cache)
 * is reconstructed from NVM by the recovering constructor, which is what
 * makes the Case 3/4 recovery paths of Section 7.2 testable.
 */

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "backend/allocator.h"
#include "backend/layout.h"
#include "backend/log_format.h"
#include "cluster/mirror.h"
#include "common/stats.h"
#include "common/types.h"
#include "nvm/nvm_device.h"
#include "rdma/rpc.h"
#include "rdma/verbs.h"
#include "sim/failure.h"
#include "sim/fault.h"
#include "sim/latency.h"
#include "sim/nic.h"

namespace asymnvm {

/**
 * An entry of the lazy-GC queue (Section 6.2). The back-end's role in
 * reclamation is to delay *reuse visibility*: after the n+l delay it bumps
 * the structure's gc_epoch so reader caches drop entries that may alias
 * reused NVM. The memory itself is returned through the owning front-end
 * allocator (sub-slab regions) or rnvm_free (whole blocks).
 */
struct GcItem
{
    uint64_t reclaim_at_ns;
    DsId ds;
};

/** Result of validating a front-end's latest transaction after a crash. */
enum class TxValidation : uint8_t
{
    None,  //!< no transaction pending
    Clean, //!< last transaction fully persisted (checksum valid)
    Torn,  //!< last transaction torn; front-end must re-flush
};

/**
 * QP-id namespace base for back-end background shippers at the shared
 * NIC's per-QP contention model. Front-end sessions use their (small)
 * session ids as QP ids; a back-end's replication shipper registers as
 * kShipperQpBase + node id so the two arrival streams never collide.
 */
constexpr uint64_t kShipperQpBase = 1ull << 32;

/** The back-end NVM node (one NVM "blade" of the AsymNVM architecture). */
class BackendNode
{
  public:
    /** Format a fresh device and start serving. */
    BackendNode(NodeId id, const BackendConfig &cfg,
                const LatencyModel &lat = LatencyModel::defaults());

    /**
     * Open an existing device (restart after a crash, or promotion of a
     * mirror replica). Reconstructs all volatile state from NVM and rolls
     * the log tails forward where the checksums validate (Case 3).
     */
    BackendNode(NodeId id, const BackendConfig &cfg,
                std::shared_ptr<NvmDevice> device,
                const LatencyModel &lat = LatencyModel::defaults());

    NodeId id() const { return id_; }
    const Layout &layout() const { return layout_; }
    const BackendConfig &config() const { return cfg_; }
    NvmDevice &nvm() { return *device_; }
    std::shared_ptr<NvmDevice> device() { return device_; }
    NicModel &nic() { return nic_; }
    FailureInjector &failure() { return fail_; }
    FaultModel &faults() { return fault_model_; }
    BackendAllocator &allocator() { return *allocator_; }

    /** What a front-end NIC needs to reach this node. */
    RdmaTarget rdmaTarget()
    {
        RdmaTarget t{device_.get(), &nic_, &fail_, &fault_model_, {}};
        // One-sided writes (lock words, lock-ahead records, ring pads,
        // aux generations) mutate durable NVM without passing through any
        // handler; observing them here is what makes the mirror replica
        // byte-identical rather than merely log-equivalent.
        t.on_write = [this](uint64_t off, size_t len) {
            noteRemoteWrite(off, len);
        };
        return t;
    }

    /** Attach a mirror node; subsequent durable writes replicate to it. */
    void addMirror(MirrorNode *mirror);

    /** Detach a crashed mirror (Case 5). */
    void removeMirror(MirrorNode *mirror);

    /**
     * Stage a range a front-end just wrote one-sided into this node's
     * replication batch (invoked from the verbs layer's on_write hook).
     */
    void noteRemoteWrite(uint64_t off, size_t len);

    /**
     * Ship the pending replication batch now: one chained transfer and
     * ONE persist per mirror (Section 7.1). Runs automatically before
     * every commit ack (onTxAppended, fenced op-log appends, RPC
     * mutations); the explicit entry point exists for audits and for
     * draining ranges staged by post-commit one-sided writes.
     */
    void flushReplication();

    /** Retry/backoff knobs for transient-faulted replication transfers. */
    void setReplicationRetryPolicy(const RetryPolicy &p)
    {
        repl_retry_ = p;
    }

    /** Replication batching counters (batches, persists, coalescing). */
    const ReplicationStats &replicationStats() const { return repl_stats_; }

    /** Modeled per-batch replication latency (ship + persist fence). */
    const Histogram &replicationHistogram() const { return repl_hist_; }

    // ------------------------------------------------------------------
    // Session management (connection setup, out of band like QP setup)
    // ------------------------------------------------------------------

    /**
     * Register a front-end session. If @p session_id already owns a slot
     * (reconnect after a front-end crash, Cases 1/2) the same slot is
     * returned so the session recovers its log rings.
     */
    Status registerFrontend(uint64_t session_id, uint32_t *slot);

    /** Release a slot on clean session shutdown. */
    void unregisterFrontend(uint32_t slot);

    /** Read the control block of @p slot (recovery uses this). */
    LogControl readControl(uint32_t slot) const;

    // ------------------------------------------------------------------
    // Passive handlers: invoked by the transport after a one-sided
    // append lands in this node's log rings.
    // ------------------------------------------------------------------

    /**
     * A transaction of memory logs was appended at monotonic ring
     * position @p pos with byte length @p len. Validates the checksum,
     * replays the logs into the data area (bracketed by SN increments for
     * lock-based structures), replicates, advances LPN, and processes due
     * GC items. @p now_ns is the caller's virtual time.
     */
    Status onTxAppended(uint32_t slot, uint64_t pos, uint32_t len,
                        uint64_t now_ns);

    /**
     * An operation log record was appended (validate + replicate).
     *
     * @p fenced distinguishes a synchronous append (the op's durability
     * point in per-op modes: the control block persists immediately) from
     * a doorbell-batched posted append, whose control-block update is
     * deferred to the batch's commit (the next onTxAppended or fenced
     * append persists the accumulated positions). Deferred records are
     * safe: a back-end restart rolls decodable records beyond the
     * persisted head forward (rollTailsForward), and unfenced appends
     * were never acked as durable to the application anyway. Batched
     * appends also share one @p now_ns timestamp — the doorbell's.
     */
    Status onOpLogAppended(uint32_t slot, uint64_t pos, uint32_t len,
                           uint64_t now_ns, bool fenced = true);

    // ------------------------------------------------------------------
    // RFP-RPC handlers (the memory-management interface of Table 1)
    // ------------------------------------------------------------------

    /** Allocate @p nblocks contiguous slabs; returns their NVM offset. */
    Status rpcAllocBlocks(uint64_t nblocks, uint64_t *off);

    /** Free slabs previously returned by rpcAllocBlocks. */
    Status rpcFreeBlocks(uint64_t off, uint64_t nblocks);

    /**
     * Retire memory of a multi-version structure: after the lazy-GC
     * delay (Section 6.2) the structure's gc_epoch is bumped, signalling
     * readers that the regions may be reused.
     */
    Status rpcRetire(DsId ds, std::span<const std::pair<uint64_t, uint64_t>>
                                  regions,
                     uint64_t now_ns);

    /**
     * Serve the RPC request currently in @p slot's request ring and write
     * the response into its response ring (the passive half of RfpRpc).
     */
    Status handleRpc(uint32_t slot);

    /** Create (or fail on duplicate) a named structure; returns its id. */
    Status rpcCreateName(uint64_t name_hash, DsType type, DsId *id);

    /** Look up a named structure. */
    Status rpcLookupName(uint64_t name_hash, DsId *id, DsType *type) const;

    // ------------------------------------------------------------------
    // Recovery API (Section 7.2)
    // ------------------------------------------------------------------

    /**
     * Validate the durability of the newest transaction bytes a front-end
     * may have in flight at its memlog head (Case 2/3).
     */
    TxValidation validateTail(uint32_t slot);

    /**
     * Case 2.a/3.a: if a fully persisted transaction sits unprocessed at
     * the memlog head (the crash hit between the append and the ack),
     * roll it forward. Returns what was found.
     */
    TxValidation recoverTailTx(uint32_t slot);

    /**
     * Operation logs whose memory logs were never replayed (OPN beyond
     * covered_opn). The recovering front-end re-executes these.
     */
    std::vector<ParsedOpLog> uncoveredOps(uint32_t slot) const;

    /**
     * Number of op-log records currently in the uncovered window (the
     * records recovery would replay). Crash audits cross-check this
     * against what uncoveredOps() can actually decode: a shortfall means
     * an undecodable record sits inside the recovery window.
     */
    uint64_t opWindowSize(uint32_t slot) const;

    /**
     * Clear a writer lock left behind by a crashed front-end, using the
     * lock-ahead record (Section 6.1).
     */
    void releaseStaleLocks(uint32_t slot);

    /** Force all due (and optionally all pending) GC items to run. */
    void processGc(uint64_t now_ns, bool force = false);

    // ------------------------------------------------------------------
    // Naming-space access helpers used by front-end sessions
    // ------------------------------------------------------------------

    /** Absolute NVM offset of a naming entry. */
    uint64_t namingOff(DsId id) const { return layout_.namingEntryOff(id); }

    /** Volatile snapshot of a naming entry (backend-local read). */
    NamingEntry namingEntry(DsId id) const;

    DsType dsType(DsId id) const;
    uint32_t nameCount() const;

    // ------------------------------------------------------------------
    // Statistics (Figure 11 CPU-utilization accounting)
    // ------------------------------------------------------------------

    uint64_t busyNs() const { return busy_ns_.get(); }
    uint64_t replayedTxs() const { return replayed_txs_.get(); }
    uint64_t replayedEntries() const { return replayed_entries_.get(); }
    uint64_t rpcCalls() const { return rpc_calls_.get(); }
    uint64_t gcPending() const;
    uint64_t epoch() const { return layoutEpoch_; }

    void resetStats();

  private:
    /**
     * Pending mirror-replication batch: byte ranges staged during log
     * append, replay and one-sided writes, coalesced and shipped as one
     * chained transfer (plus one persist) per mirror at the next commit
     * boundary. Ranges store their payload in a shared bump buffer;
     * adjacent appends extend the running range (the ring-append pattern)
     * and an exact (off,len) re-write overwrites its slot in place (the
     * control block is written twice per transaction).
     */
    struct ReplBatch
    {
        struct Range
        {
            uint64_t off;
            uint32_t len;
            uint32_t buf_off;
        };
        std::vector<Range> ranges;
        std::vector<uint8_t> buf;
        std::unordered_map<uint64_t, size_t> index; //!< off -> range slot
        uint64_t raw_writes = 0;

        bool empty() const { return ranges.empty(); }
        void clear()
        {
            ranges.clear();
            buf.clear();
            index.clear();
            raw_writes = 0;
        }
    };

    /** Stage @p len device bytes at @p off into the batch (mu_ held). */
    void stageReplicationLocked(uint64_t off, size_t len);

    /** Ship + persist the batch to every mirror (mu_ held). */
    void flushReplicationLocked(uint64_t now_ns);

    /** One retried transfer of the batch to one mirror; false = give up. */
    bool shipBatchToMirror(MirrorNode *m, uint64_t now_ns);

    /** Durable backend-local write: stage, persist, replicate. */
    void writeLocal(uint64_t off, const void *src, size_t len);

    /**
     * Zero one consumed zero-based record's bytes in a log ring (mu_
     * held): restores the pre-zeroed invariant the zero-based format's
     * presence check relies on, off the front-end critical path. A
     * guard read of the leading magic keeps the zeroing record-exact —
     * skip markers and records of other formats are left untouched, so
     * classic/header-dancing device images stay bit-identical.
     */
    void zeroConsumedRecordLocked(uint64_t ring_base, uint64_t ring_size,
                                  uint64_t pos, uint32_t len,
                                  uint32_t expect_magic);

    /** Durable atomic 8-byte backend-local write (SN, gc_epoch). */
    void writeLocal64(uint64_t off, uint64_t v);

    void writeControl(uint32_t slot);
    void loadVolatileState();
    void rollTailsForward();
    void replayTx(uint32_t slot, const TxParser &tx);
    void processGcLocked(uint64_t now_ns, bool force);
    uint64_t ringReadAbs(uint64_t ring_base, uint64_t ring_size,
                         uint64_t pos) const;

    NodeId id_;
    BackendConfig cfg_;
    LatencyModel lat_;
    Layout layout_;
    std::shared_ptr<NvmDevice> device_;
    NicModel nic_;
    FailureInjector fail_;
    FaultModel fault_model_;
    std::unique_ptr<BackendAllocator> allocator_;
    std::vector<MirrorNode *> mirrors_;
    ReplBatch repl_batch_;
    RetryPolicy repl_retry_;
    ReplicationStats repl_stats_;
    Histogram repl_hist_;

    mutable std::mutex mu_; //!< serializes the backend "CPU"

    // Volatile shadows reconstructed on open().
    std::vector<LogControl> controls_;
    std::vector<uint64_t> slot_session_; //!< 0 = free slot
    std::vector<NamingEntry> names_;

    /** Sliding window of op logs not yet covered by a transaction. */
    struct OpWindowItem
    {
        uint64_t opn;
        uint64_t pos;
        uint32_t len;
    };
    std::vector<std::deque<OpWindowItem>> op_window_;

    /**
     * Volatile RPC dedup state (idempotent resend): last sequence number
     * served per slot and the response it produced. A resent request with
     * the same seq is answered from the stored response without
     * re-executing. Deliberately NOT persisted: a back-end restart clears
     * it, and the worst a post-restart re-execution can do is leak an
     * allocation — which recovery's heap audit tolerates by design.
     */
    std::vector<uint64_t> rpc_served_seq_;
    std::vector<RpcResponse> rpc_last_resp_;

    std::deque<GcItem> gc_queue_;
    uint64_t layoutEpoch_ = 0;
    /** Last virtual time the GC queue was scanned. Doorbell-batched log
     *  appends all carry the batch's timestamp, so repeat scans at an
     *  unchanged time are skipped unless an item is actually due. */
    uint64_t last_gc_scan_ns_ = UINT64_MAX;

    Counter busy_ns_;
    Counter replayed_txs_;
    Counter replayed_entries_;
    Counter rpc_calls_;
};

} // namespace asymnvm

#endif // ASYMNVM_BACKEND_BACKEND_NODE_H_
