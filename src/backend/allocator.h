#ifndef ASYMNVM_BACKEND_ALLOCATOR_H_
#define ASYMNVM_BACKEND_ALLOCATOR_H_

/**
 * @file
 * Back-end tier of the two-tier slab allocator (Section 5).
 *
 * The back-end hands out fixed-size blocks ("slabs") from the data area
 * and records usage in a *persistent bitmap* — one bit per block — so the
 * allocator recovers by rescanning the bitmap after a restart (the paper's
 * design decision for fast recovery, Section 5.1). The front-end tier
 * (frontend/allocator.h) subdivides slabs at finer granularity.
 */

#include <cstdint>
#include <functional>
#include <vector>

#include "backend/layout.h"
#include "common/types.h"
#include "nvm/nvm_device.h"

namespace asymnvm {

/** Bitmap slab allocator over the back-end data area. */
class BackendAllocator
{
  public:
    /**
     * Hook through which every bitmap mutation is written, so the owning
     * BackendNode can persist it and forward it to mirror nodes.
     */
    using NvmWriter =
        std::function<void(uint64_t off, const void *src, size_t len)>;

    BackendAllocator(NvmDevice *nvm, const Layout &layout, NvmWriter writer);

    /** Rebuild the volatile free count and rover from the NVM bitmap. */
    void recover();

    /**
     * Allocate @p nblocks contiguous blocks.
     * @param[out] off Absolute NVM offset of the first block.
     */
    Status alloc(uint64_t nblocks, uint64_t *off);

    /** Release @p nblocks blocks starting at absolute offset @p off. */
    Status free(uint64_t off, uint64_t nblocks);

    /** True when the block containing @p off is currently allocated. */
    bool isAllocated(uint64_t off) const;

    uint64_t freeBlocks() const { return free_blocks_; }
    uint64_t totalBlocks() const { return layout_.super.data_blocks; }
    uint64_t blockSize() const { return layout_.super.block_size; }

  private:
    bool testBit(uint64_t block) const;
    void setBits(uint64_t first, uint64_t count, bool value);

    NvmDevice *nvm_;
    Layout layout_;
    NvmWriter writer_;
    std::vector<uint64_t> bitmap_; //!< volatile shadow of the NVM bitmap
    uint64_t rover_ = 0;           //!< next-fit scan position
    uint64_t free_blocks_ = 0;
};

} // namespace asymnvm

#endif // ASYMNVM_BACKEND_ALLOCATOR_H_
