#include "backend/layout.h"

#include <stdexcept>

namespace asymnvm {

namespace {

constexpr uint64_t
alignUp(uint64_t v, uint64_t a)
{
    return (v + a - 1) / a * a;
}

} // namespace

Layout
Layout::compute(const BackendConfig &cfg)
{
    Layout lay;
    SuperBlock &sb = lay.super;
    sb.magic = kSuperMagic;
    sb.layout_version = 1;
    sb.max_frontends = cfg.max_frontends;
    sb.max_names = cfg.max_names;
    sb.memlog_ring_size = cfg.memlog_ring_size;
    sb.oplog_ring_size = cfg.oplog_ring_size;
    sb.rpc_ring_size = cfg.rpc_ring_size;
    sb.block_size = cfg.block_size;
    sb.epoch = 0;

    uint64_t off = alignUp(sizeof(SuperBlock), 256);
    sb.naming_off = off;
    off += static_cast<uint64_t>(cfg.max_names) * sizeof(NamingEntry);
    off = alignUp(off, 256);

    sb.felog_off = off;
    sb.felog_stride = alignUp(sizeof(LogControl) + cfg.memlog_ring_size +
                                  cfg.oplog_ring_size +
                                  2 * cfg.rpc_ring_size,
                              256);
    off += static_cast<uint64_t>(cfg.max_frontends) * sb.felog_stride;
    off = alignUp(off, 256);

    // The bitmap covers the data area; solve for the block count that
    // makes bitmap + data fit in the remaining space.
    if (off + 4096 >= cfg.nvm_size)
        throw std::invalid_argument("Layout: device too small for metadata");
    const uint64_t remaining = cfg.nvm_size - off;
    // blocks * block_size + blocks/8 <= remaining  (plus alignment slack)
    uint64_t blocks = remaining / (cfg.block_size + 1);
    while (true) {
        const uint64_t bitmap_bytes = alignUp((blocks + 7) / 8, 256);
        const uint64_t data_off = alignUp(off + bitmap_bytes, 256);
        if (data_off + blocks * cfg.block_size <= cfg.nvm_size) {
            sb.bitmap_off = off;
            sb.bitmap_bytes = bitmap_bytes;
            sb.data_off = data_off;
            sb.data_blocks = blocks;
            break;
        }
        if (blocks == 0)
            throw std::invalid_argument("Layout: no room for data area");
        --blocks;
    }
    if (sb.data_blocks < 8)
        throw std::invalid_argument("Layout: data area too small");
    return lay;
}

} // namespace asymnvm
