#ifndef ASYMNVM_BACKEND_LAYOUT_H_
#define ASYMNVM_BACKEND_LAYOUT_H_

/**
 * @file
 * On-NVM layout of a back-end node.
 *
 * Everything needed for recovery lives at "well-known" locations, the
 * paper's *global naming space* (Section 5.1): the superblock at offset 0
 * describes every region; the naming table maps data-structure names to
 * their root references, locks and sequence numbers; the allocation bitmap
 * records slab usage; per-front-end areas hold the memory-log and
 * operation-log rings plus a control block with the LPN/OPN counters.
 *
 * All structures here are trivially-copyable PODs that are memcpy'd into
 * and out of simulated NVM, so their layout *is* the persistent format.
 */

#include <cstddef>
#include <cstdint>

#include "common/types.h"
#include "sim/nic_qos.h"

namespace asymnvm {

/** Data-structure types registered in the naming space. */
enum class DsType : uint32_t
{
    None = 0,
    Stack,
    Queue,
    HashTable,
    SkipList,
    Bst,
    BpTree,
    MvBst,
    MvBpTree,
    Raw, //!< application-managed region
};

/** Magic value identifying a formatted AsymNVM back-end device. */
constexpr uint64_t kSuperMagic = 0x4153594d4e564d31ULL; // "ASYMNVM1"

/** Superblock at NVM offset 0: the root of the global naming space. */
struct SuperBlock
{
    uint64_t magic;
    uint32_t layout_version;
    uint32_t max_frontends;
    uint32_t max_names;
    uint32_t pad0;
    uint64_t naming_off;       //!< naming table region
    uint64_t bitmap_off;       //!< allocation bitmap region
    uint64_t bitmap_bytes;
    uint64_t felog_off;        //!< first per-front-end area
    uint64_t felog_stride;     //!< bytes per front-end area
    uint64_t memlog_ring_size;
    uint64_t oplog_ring_size;
    uint64_t rpc_ring_size;    //!< request+response rings (each this size)
    uint64_t data_off;         //!< slab data area
    uint64_t data_blocks;
    uint64_t block_size;       //!< slab granularity handed to front-ends
    uint64_t epoch;            //!< bumped on every (re)start, for fencing
};

/**
 * One entry of the naming table. Holds the root reference of a data
 * structure plus "other necessary data such as exclusive lock" stored
 * "next to the root reference" (Section 5.1): the multi-version counter,
 * the GC epoch, the reader sequence number (Section 6.3), the writer lock
 * word (Section 6.1), and a few DS-specific auxiliary words (hash-table
 * bucket array address, queue head/tail, element count, partition map).
 */
struct NamingEntry
{
    uint64_t name_hash;   //!< 0 marks a free slot
    uint32_t type;        //!< DsType
    uint32_t flags;
    uint64_t root_raw;    //!< RemotePtr::raw(); swapped atomically for MV
    uint64_t version;     //!< multi-version counter
    uint64_t gc_epoch;    //!< bumped when reclaimed NVM may be reused
    uint64_t seq_num;     //!< seqlock SN (even = quiescent)
    uint64_t writer_lock; //!< 0 = free, else front-end slot + 1
    uint64_t aux[4];      //!< DS-specific auxiliary metadata
    uint8_t reserved[40];
};

static_assert(sizeof(NamingEntry) == 128, "NamingEntry is a 128B NVM slot");

/** Byte offsets of NamingEntry fields, for direct one-sided access. */
namespace naming_field {
constexpr uint64_t kRoot = offsetof(NamingEntry, root_raw);
constexpr uint64_t kVersion = offsetof(NamingEntry, version);
constexpr uint64_t kGcEpoch = offsetof(NamingEntry, gc_epoch);
constexpr uint64_t kSeqNum = offsetof(NamingEntry, seq_num);
constexpr uint64_t kWriterLock = offsetof(NamingEntry, writer_lock);
constexpr uint64_t kAux0 = offsetof(NamingEntry, aux);
} // namespace naming_field

/**
 * Per-front-end control block: log positions and recovery bookkeeping.
 * LPN / OPN terminology follows Section 5.1 — the Log Processing Number
 * is the sequence number of the next memory-log transaction, the
 * Operation Processing Number that of the next operation log.
 */
struct LogControl
{
    uint64_t lpn;              //!< next memory-log transaction number
    uint64_t opn;              //!< next operation-log number
    uint64_t memlog_head;      //!< monotonic append offset into the ring
    uint64_t memlog_applied;   //!< logs below this offset are replayed
    uint64_t oplog_head;       //!< monotonic append offset into the ring
    uint64_t oplog_tail;       //!< oldest op log not yet covered by a tx
    uint64_t covered_opn;      //!< OPN covered by replayed transactions
    uint64_t lock_ahead;       //!< ds_id+1 while holding a writer lock
    uint64_t last_tx_off;      //!< ring offset of the latest transaction
    uint64_t last_tx_len;      //!< its byte length (0 = none)
    uint64_t session_epoch;    //!< fencing: epoch of the owning session
    uint8_t reserved[40];
};

static_assert(sizeof(LogControl) == 128, "LogControl is a 128B NVM slot");

/** Static configuration of one back-end node. */
struct BackendConfig
{
    uint64_t nvm_size = 64ull << 20;       //!< total device bytes
    uint32_t max_frontends = 8;
    uint32_t max_names = 64;
    uint64_t memlog_ring_size = 1ull << 20;
    uint64_t oplog_ring_size = 256ull << 10;
    uint64_t rpc_ring_size = 8ull << 10;
    uint64_t block_size = 1024;            //!< slab granularity
    /** Lazy GC delay n + l from Section 6.2, in virtual nanoseconds. */
    uint64_t gc_delay_ns = (4000 + 1000) * 1000ull;
    /**
     * Shared-NIC per-QP contention / QoS knobs (sim/nic_qos.h). Default
     * keeps the legacy scalar model — and every existing result —
     * bit-identical; volatile configuration only, not persisted.
     */
    NicQosConfig nic_qos;
};

/** Computed region offsets for a given configuration and device size. */
struct Layout
{
    SuperBlock super{};

    /** Compute a layout; throws std::invalid_argument if it cannot fit. */
    static Layout compute(const BackendConfig &cfg);

    uint64_t namingEntryOff(DsId id) const
    {
        return super.naming_off + static_cast<uint64_t>(id) *
            sizeof(NamingEntry);
    }

    uint64_t logControlOff(uint32_t fe_slot) const
    {
        return super.felog_off + fe_slot * super.felog_stride;
    }

    uint64_t memlogRingOff(uint32_t fe_slot) const
    {
        return logControlOff(fe_slot) + sizeof(LogControl);
    }

    uint64_t oplogRingOff(uint32_t fe_slot) const
    {
        return memlogRingOff(fe_slot) + super.memlog_ring_size;
    }

    uint64_t rpcReqRingOff(uint32_t fe_slot) const
    {
        return oplogRingOff(fe_slot) + super.oplog_ring_size;
    }

    uint64_t rpcRespRingOff(uint32_t fe_slot) const
    {
        return rpcReqRingOff(fe_slot) + super.rpc_ring_size;
    }

    uint64_t dataOff() const { return super.data_off; }
    uint64_t dataEnd() const
    {
        return super.data_off + super.data_blocks * super.block_size;
    }
};

} // namespace asymnvm

#endif // ASYMNVM_BACKEND_LAYOUT_H_
