#ifndef ASYMNVM_BACKEND_LOG_FORMAT_H_
#define ASYMNVM_BACKEND_LOG_FORMAT_H_

/**
 * @file
 * Wire/NVM format of memory logs, transaction logs and operation logs
 * (Figure 3 of the paper), plus builder/parser helpers shared by the
 * front-end (which constructs logs) and the back-end (which validates,
 * replays, and recovers them).
 *
 * Three pluggable encodings exist behind the same builder/parser
 * surface, selected per session via SessionConfig::log_format. Every
 * record is self-identifying through its leading magic, so the back-end
 * replay/recovery scan sniffs the encoding per record and mirrors
 * replicate raw byte ranges without knowing the format at all.
 *
 *  - classic (the Figure-3 layout, bit-identical to the original):
 *
 *      TxHeader | entry* | TxFooter
 *      entry  = MemLogEntryHeader | value bytes (when flag == kInline)
 *
 *    The footer carries the commit flag and a CRC32-C checksum over the
 *    header and entries — the "end mark" used after a crash to decide
 *    whether the latest transaction tore (Section 4.2). Op-log records
 *    pay a 40 B header plus a trailing u32 CRC.
 *
 *  - header-dancing (in-cache-line logging, Cohen et al.): the record
 *    is padded to a 64 B multiple and the 8 B commit mark {commit
 *    magic, CRC} lives *inside* the final cache line, at an 8 B slot
 *    that rotates ("dances") with the LPN across the line's free slots.
 *    The mark rides the same store as the payload tail, so a record
 *    commits with one store + one persist instead of the classic
 *    payload-then-footer ordering. Op-log records use the compact 32 B
 *    OpLogHeaderC whose CRC field doubles as the commit mark.
 *
 *  - zero-based (NVLog-style packed WAL over a pre-zeroed ring):
 *    validity is the zero/non-zero state of the ring bytes themselves.
 *    The encoder interleaves one non-zero presence byte per 64 B of
 *    wire (at raw offsets ≡ 63 mod 64) plus a terminal presence byte;
 *    each presence value is derived from the record's sequence numbers,
 *    so a prefix tear leaves a zero (or mismatching) presence byte and
 *    is detected without any commit flag or CRC for small records. The
 *    back-end restores the pre-zeroed invariant off the critical path
 *    by zeroing consumed records after replay.
 *
 * An operation log record is self-delimiting and validated so the
 * recovery scan (Case 2/3, Section 7.2) can walk the ring from the last
 * covered OPN and re-execute operations whose memory logs never flushed.
 */

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <vector>

#include "common/checksum.h"
#include "common/types.h"

namespace asymnvm {

/** Operation types recorded in operation logs. */
enum class OpType : uint8_t
{
    None = 0,
    Insert,
    Update,
    Erase,
    Push,
    Pop,
    Enqueue,
    Dequeue,
};

/** Highest OpType byte a decoder accepts; larger values are corrupt. */
constexpr uint8_t kMaxOpTypeByte = static_cast<uint8_t>(OpType::Dequeue);

/** The pluggable log encodings (see the file comment). */
enum class LogFormatKind : uint8_t
{
    Classic = 0,       //!< Figure-3 layout, bit-identical, the default
    HeaderDancing = 1, //!< rotating in-line commit mark, 64 B aligned
    ZeroBased = 2,     //!< zero/non-zero validity over pre-zeroed rings
};

const char *logFormatName(LogFormatKind fmt);

/** Memory-log entry flags (the one-byte "Flag" of Figure 3). */
enum class MemLogFlag : uint8_t
{
    kInline = 0, //!< value bytes follow the header
    kOpRef = 1,  //!< value lives in a previously flushed operation log
};

/** Header preceding each memory-log entry inside a transaction. */
struct MemLogEntryHeader
{
    uint8_t flag;      //!< MemLogFlag
    uint8_t pad[3];
    uint32_t len;      //!< value length in bytes
    uint64_t addr_raw; //!< RemotePtr::raw() destination address
};
static_assert(sizeof(MemLogEntryHeader) == 16);

/** Transaction header (shared field layout across all three formats). */
struct TxHeader
{
    uint32_t magic;       //!< kTxMagic / kTxMagicHd / kTxMagicZb
    uint32_t num_entries;
    uint32_t payload_len; //!< bytes of entries following the header
    uint32_t pad;
    uint64_t lpn;         //!< this transaction's Log Processing Number
    uint64_t ds_id;       //!< structure whose SN brackets the replay
    uint64_t covered_opn; //!< operation logs up to this OPN are covered
};
static_assert(sizeof(TxHeader) == 40);

/** Classic transaction footer: commit flag + checksum end mark. */
struct TxFooter
{
    uint32_t commit_flag; //!< kTxCommit
    uint32_t checksum;    //!< CRC32-C over header + entries
};
static_assert(sizeof(TxFooter) == 8);

constexpr uint32_t kTxMagic = 0x54584c47;   // "TXLG" (classic)
constexpr uint32_t kTxCommit = 0xc0331717;  // classic commit mark
constexpr uint32_t kOpMagic = 0x4f504c47;   // "OPLG" (classic)
constexpr uint32_t kSkipMagic = 0x534b4950; // ring wrap padding marker

constexpr uint32_t kTxMagicHd = 0x54584844;  // "TXHD" header-dancing tx
constexpr uint32_t kTxCommitHd = 0xda9c1e64; // dancing commit mark
constexpr uint32_t kOpMagicHd = 0x4f504844;  // "OPHD" header-dancing op
constexpr uint32_t kTxMagicZb = 0x54585a42;  // "TXZB" zero-based tx
constexpr uint32_t kOpMagicZb = 0x4f505a42;  // "OPZB" zero-based op

/** Classic operation-log record header; val_len bytes + u32 CRC follow. */
struct OpLogHeader
{
    uint32_t magic; //!< kOpMagic
    uint8_t op;     //!< OpType
    uint8_t pad[3];
    uint64_t ds_id;
    uint64_t opn;
    uint64_t key;
    uint32_t val_len;
    uint32_t pad2;
};
static_assert(sizeof(OpLogHeader) == 40);

/**
 * Compact operation-log header shared by the header-dancing and
 * zero-based encodings. The `check` word is the header-dancing commit
 * mark (CRC32-C over the header with check = 0 plus the value bytes);
 * zero-based records leave it 0 and rely on presence bytes instead.
 * ds_id narrows to 16 bits — the naming space is bounded far below
 * that, and the encoder falls back to classic if it ever is not.
 */
struct OpLogHeaderC
{
    uint32_t magic; //!< kOpMagicHd / kOpMagicZb
    uint8_t op;     //!< OpType
    uint8_t pad;
    uint16_t ds_id;
    uint32_t val_len;
    uint32_t check; //!< HD: CRC commit mark; ZB: 0
    uint64_t opn;
    uint64_t key;
};
static_assert(sizeof(OpLogHeaderC) == 32);

// ---------------------------------------------------------------------
// Format geometry helpers (shared by builder, parser and the back-end
// recovery scan, which must size reads before it can parse).
// ---------------------------------------------------------------------

constexpr size_t alignUp8(size_t v) { return (v + 7) & ~size_t{7}; }
constexpr size_t alignUp64(size_t v) { return (v + 63) & ~size_t{63}; }

/** Raw (stuffed) position of logical byte @p i in a zero-based record:
 *  every 64th raw byte (offset ≡ 63 mod 64) is a presence byte. */
constexpr size_t zbRawPos(size_t i) { return i + i / 63; }

/** Raw bytes consumed by @p logical_len logical bytes (presence
 *  interleaved, terminal byte NOT included). */
constexpr size_t zbRawLen(size_t logical_len)
{
    return logical_len == 0 ? 0 : zbRawPos(logical_len - 1) + 1;
}

/** Full wire length of a zero-based record: stuffed bytes + terminal. */
constexpr size_t zbWireLen(size_t logical_len)
{
    return zbRawLen(logical_len) + 1;
}

/** Presence byte expected at raw offset @p raw_pos. The high bit is
 *  always set (never zero, and never collides with the all-ASCII skip
 *  marker), the low bits mix the record's sequence seed with the
 *  position so stale bytes of a different record mismatch. */
constexpr uint8_t zbPresenceByte(uint8_t seed, size_t raw_pos)
{
    return static_cast<uint8_t>(
        0x80u | ((seed + (raw_pos / 64) * 37u + raw_pos) & 0x7fu));
}

/** Per-record presence seed derived from header sequence fields. */
constexpr uint8_t zbSeed(uint64_t a, uint64_t b)
{
    const uint64_t x = a * 0x9e3779b97f4a7c15ULL ^ (b + 0x7f4a7c15u);
    return static_cast<uint8_t>(x ^ (x >> 32) ^ (x >> 17));
}

/** Wire length of a header-dancing transaction with @p body logical
 *  bytes (header + entries): padded to 64 B with room for the mark. */
constexpr size_t hdTxWireLen(size_t body)
{
    return alignUp64(body + sizeof(TxFooter));
}

/** Offset of the dancing 8 B commit mark: an aligned slot in the free
 *  space after the body, rotated by the LPN. Free space is at least
 *  8 B by construction of hdTxWireLen. */
constexpr size_t hdMarkSlot(size_t body, uint64_t lpn)
{
    const size_t wire = hdTxWireLen(body);
    const size_t first = alignUp8(body);
    const size_t nslots = (wire - first) / 8;
    return first + 8 * (lpn % nslots);
}

/** Smallest possible op-log record across formats (empty HD record). */
constexpr size_t kMinOpLogWire = sizeof(OpLogHeaderC);

/** Smallest possible transaction across formats (empty ZB tx). */
constexpr size_t kMinTxWire = zbWireLen(sizeof(TxHeader));
static_assert(kMinTxWire >= sizeof(TxHeader));

/** Format implied by a transaction magic word, nullopt if unknown. */
constexpr std::optional<LogFormatKind> txMagicKind(uint32_t magic)
{
    switch (magic) {
      case kTxMagic: return LogFormatKind::Classic;
      case kTxMagicHd: return LogFormatKind::HeaderDancing;
      case kTxMagicZb: return LogFormatKind::ZeroBased;
      default: return std::nullopt;
    }
}

/** Format implied by an op-log magic word, nullopt if unknown. */
constexpr std::optional<LogFormatKind> opMagicKind(uint32_t magic)
{
    switch (magic) {
      case kOpMagic: return LogFormatKind::Classic;
      case kOpMagicHd: return LogFormatKind::HeaderDancing;
      case kOpMagicZb: return LogFormatKind::ZeroBased;
      default: return std::nullopt;
    }
}

/**
 * Full wire length implied by a transaction header (which is readable
 * raw in every format — the first presence byte of a zero-based record
 * sits past the 40 B header). Returns 0 for an unknown magic. The
 * header may be torn, so callers must still bounds-check and parse.
 */
constexpr uint64_t txWireLen(const TxHeader &hdr)
{
    const uint64_t body =
        sizeof(TxHeader) + static_cast<uint64_t>(hdr.payload_len);
    switch (hdr.magic) {
      case kTxMagic: return body + sizeof(TxFooter);
      case kTxMagicHd: return hdTxWireLen(body);
      case kTxMagicZb: return zbWireLen(body);
      default: return 0;
    }
}

/** Serializes one transaction's memory logs into its NVM byte format. */
class TxBuilder
{
  public:
    explicit TxBuilder(LogFormatKind fmt = LogFormatKind::Classic)
        : fmt_(fmt)
    {
        reset(0, 0, 0);
    }

    /** Start a fresh transaction. */
    void reset(uint64_t lpn, uint64_t ds_id, uint64_t covered_opn);

    /** Append one inline memory log ({address, value} pair). */
    void addInline(RemotePtr addr, const void *value, uint32_t len);

    /**
     * Append an op-ref memory log whose value bytes live in the already
     * persisted operation log at ring offset @p oplog_off (+ byte offset
     * @p val_off inside that record's value). Shrinks the transaction by
     * not duplicating data the op log already persisted (Section 4.3).
     */
    void addOpRef(RemotePtr addr, uint64_t oplog_off, uint32_t val_off,
                  uint32_t len);

    uint32_t numEntries() const { return entries_; }
    LogFormatKind format() const { return fmt_; }

    /** Finish: seal the record per its format; returns the byte string. */
    std::span<const uint8_t> finish();

    /**
     * Size the finished transaction will occupy (exact in both states:
     * the predicted wire size before finish(), the actual one after).
     */
    size_t finishedSize() const
    {
        if (finished_)
            return buf_.size();
        switch (fmt_) {
          case LogFormatKind::HeaderDancing:
            return hdTxWireLen(buf_.size());
          case LogFormatKind::ZeroBased:
            return zbWireLen(buf_.size());
          case LogFormatKind::Classic:
          default:
            return buf_.size() + sizeof(TxFooter);
        }
    }

  private:
    std::vector<uint8_t> buf_;
    uint32_t entries_ = 0;
    bool finished_ = false;
    LogFormatKind fmt_ = LogFormatKind::Classic;
};

/** Parsed view of one memory-log entry. */
struct ParsedMemLog
{
    MemLogFlag flag;
    RemotePtr addr;
    uint32_t len;
    const uint8_t *inline_value; //!< valid when flag == kInline
    uint64_t oplog_off;          //!< valid when flag == kOpRef
    uint32_t val_off;            //!< valid when flag == kOpRef
};

/**
 * Validates and iterates a serialized transaction of any format (the
 * encoding is sniffed from the magic word).
 */
class TxParser
{
  public:
    /**
     * Parse @p bytes. Returns std::nullopt if the buffer is torn
     * (bad magic, truncated, missing commit mark, checksum or presence
     * mismatch, or a malformed entry stream).
     */
    static std::optional<TxParser> parse(std::span<const uint8_t> bytes);

    const TxHeader &header() const { return hdr_; }
    const std::vector<ParsedMemLog> &entries() const { return entries_; }
    LogFormatKind format() const { return fmt_; }

  private:
    TxHeader hdr_{};
    std::vector<ParsedMemLog> entries_;
    LogFormatKind fmt_ = LogFormatKind::Classic;
    /** Zero-based records are de-stuffed here; entries_ alias it (the
     *  heap block is stable across the move out of parse()). */
    std::vector<uint8_t> destuffed_;
};

/** Serialize one operation-log record in the given format. */
std::vector<uint8_t> encodeOpLog(LogFormatKind fmt, OpType op,
                                 uint64_t ds_id, uint64_t opn, Key key,
                                 const void *value, uint32_t val_len);

/** Classic-format convenience overload (the historical signature). */
std::vector<uint8_t> encodeOpLog(OpType op, uint64_t ds_id, uint64_t opn,
                                 Key key, const void *value,
                                 uint32_t val_len);

/** Parsed operation-log record. */
struct ParsedOpLog
{
    OpType op;
    uint64_t ds_id;
    uint64_t opn;
    Key key;
    std::vector<uint8_t> value;
    size_t wire_len; //!< bytes the record occupies in the ring
};

/**
 * Decode an op-log record of any format at the start of @p bytes.
 * Returns std::nullopt on bad magic / truncation / validity-check
 * mismatch / out-of-range OpType.
 */
std::optional<ParsedOpLog> decodeOpLog(std::span<const uint8_t> bytes);

/**
 * Copy @p len value bytes starting at value offset @p val_off out of
 * the raw op-log record bytes @p rec (which begin at the record's
 * header; the format is sniffed). Used by the back-end replayer to
 * dereference op-ref entries without decoding the whole record.
 * Returns false when @p rec is too short for the requested slice.
 */
bool extractOpLogValue(std::span<const uint8_t> rec, uint32_t val_off,
                       uint32_t len, uint8_t *out);

/** Raw record bytes extractOpLogValue may need for a slice, across all
 *  formats (callers clamp to the ring's contiguous remainder). */
constexpr size_t opLogValueSpanBytes(uint32_t val_off, uint32_t len)
{
    const size_t logical_end =
        sizeof(OpLogHeaderC) + static_cast<size_t>(val_off) + len;
    const size_t zb_end = zbRawPos(logical_end) + 1;
    const size_t classic_end =
        sizeof(OpLogHeader) + static_cast<size_t>(val_off) + len;
    return std::max({zb_end, classic_end, sizeof(OpLogHeader)});
}

} // namespace asymnvm

#endif // ASYMNVM_BACKEND_LOG_FORMAT_H_
