#ifndef ASYMNVM_BACKEND_LOG_FORMAT_H_
#define ASYMNVM_BACKEND_LOG_FORMAT_H_

/**
 * @file
 * Wire/NVM format of memory logs, transaction logs and operation logs
 * (Figure 3 of the paper), plus builder/parser helpers shared by the
 * front-end (which constructs logs) and the back-end (which validates,
 * replays, and recovers them).
 *
 * A transaction is a contiguous byte string:
 *
 *   TxHeader | entry* | TxFooter
 *   entry  = MemLogEntryHeader | value bytes (when flag == kInline)
 *
 * The footer carries the commit flag and a CRC32-C checksum over the
 * header and entries — the "end mark" used after a crash to decide
 * whether the latest transaction tore (Section 4.2).
 *
 * An operation log record is self-delimiting and checksummed so the
 * recovery scan (Case 2/3, Section 7.2) can walk the ring from the last
 * covered OPN and re-execute operations whose memory logs never flushed.
 */

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <vector>

#include "common/checksum.h"
#include "common/types.h"

namespace asymnvm {

/** Operation types recorded in operation logs. */
enum class OpType : uint8_t
{
    None = 0,
    Insert,
    Update,
    Erase,
    Push,
    Pop,
    Enqueue,
    Dequeue,
};

/** Memory-log entry flags (the one-byte "Flag" of Figure 3). */
enum class MemLogFlag : uint8_t
{
    kInline = 0, //!< value bytes follow the header
    kOpRef = 1,  //!< value lives in a previously flushed operation log
};

/** Header preceding each memory-log entry inside a transaction. */
struct MemLogEntryHeader
{
    uint8_t flag;      //!< MemLogFlag
    uint8_t pad[3];
    uint32_t len;      //!< value length in bytes
    uint64_t addr_raw; //!< RemotePtr::raw() destination address
};
static_assert(sizeof(MemLogEntryHeader) == 16);

/** Transaction header. */
struct TxHeader
{
    uint32_t magic;       //!< kTxMagic
    uint32_t num_entries;
    uint32_t payload_len; //!< bytes of entries between header and footer
    uint32_t pad;
    uint64_t lpn;         //!< this transaction's Log Processing Number
    uint64_t ds_id;       //!< structure whose SN brackets the replay
    uint64_t covered_opn; //!< operation logs up to this OPN are covered
};
static_assert(sizeof(TxHeader) == 40);

/** Transaction footer: commit flag + checksum end mark. */
struct TxFooter
{
    uint32_t commit_flag; //!< kTxCommit
    uint32_t checksum;    //!< CRC32-C over header + entries
};
static_assert(sizeof(TxFooter) == 8);

constexpr uint32_t kTxMagic = 0x54584c47;  // "TXLG"
constexpr uint32_t kTxCommit = 0xc0331717; // commit mark
constexpr uint32_t kOpMagic = 0x4f504c47;  // "OPLG"
constexpr uint32_t kSkipMagic = 0x534b4950; // ring wrap padding marker

/** Operation-log record header; val_len value bytes and a u32 CRC follow. */
struct OpLogHeader
{
    uint32_t magic; //!< kOpMagic
    uint8_t op;     //!< OpType
    uint8_t pad[3];
    uint64_t ds_id;
    uint64_t opn;
    uint64_t key;
    uint32_t val_len;
    uint32_t pad2;
};
static_assert(sizeof(OpLogHeader) == 40);

/** Serializes one transaction's memory logs into its NVM byte format. */
class TxBuilder
{
  public:
    TxBuilder() { reset(0, 0, 0); }

    /** Start a fresh transaction. */
    void reset(uint64_t lpn, uint64_t ds_id, uint64_t covered_opn);

    /** Append one inline memory log ({address, value} pair). */
    void addInline(RemotePtr addr, const void *value, uint32_t len);

    /**
     * Append an op-ref memory log whose value bytes live in the already
     * persisted operation log at ring offset @p oplog_off (+ byte offset
     * @p val_off inside that record's value). Shrinks the transaction by
     * not duplicating data the op log already persisted (Section 4.3).
     */
    void addOpRef(RemotePtr addr, uint64_t oplog_off, uint32_t val_off,
                  uint32_t len);

    uint32_t numEntries() const { return entries_; }

    /** Finish: patch header/footer and return the full byte string. */
    std::span<const uint8_t> finish();

    /** Size the finished transaction will occupy. */
    size_t finishedSize() const { return buf_.size() + sizeof(TxFooter); }

  private:
    std::vector<uint8_t> buf_;
    uint32_t entries_ = 0;
    bool finished_ = false;
};

/** Parsed view of one memory-log entry. */
struct ParsedMemLog
{
    MemLogFlag flag;
    RemotePtr addr;
    uint32_t len;
    const uint8_t *inline_value; //!< valid when flag == kInline
    uint64_t oplog_off;          //!< valid when flag == kOpRef
    uint32_t val_off;            //!< valid when flag == kOpRef
};

/**
 * Validates and iterates a serialized transaction.
 */
class TxParser
{
  public:
    /**
     * Parse @p bytes. Returns std::nullopt if the buffer is torn
     * (bad magic, truncated, missing commit flag, or checksum mismatch).
     */
    static std::optional<TxParser> parse(std::span<const uint8_t> bytes);

    const TxHeader &header() const { return hdr_; }
    const std::vector<ParsedMemLog> &entries() const { return entries_; }

  private:
    TxHeader hdr_{};
    std::vector<ParsedMemLog> entries_;
};

/** Serialize one operation-log record (returns the full byte string). */
std::vector<uint8_t> encodeOpLog(OpType op, uint64_t ds_id, uint64_t opn,
                                 Key key, const void *value,
                                 uint32_t val_len);

/** Parsed operation-log record. */
struct ParsedOpLog
{
    OpType op;
    uint64_t ds_id;
    uint64_t opn;
    Key key;
    std::vector<uint8_t> value;
    size_t wire_len; //!< bytes the record occupies in the ring
};

/**
 * Decode an op-log record at the start of @p bytes. Returns std::nullopt
 * on bad magic / truncation / checksum mismatch.
 */
std::optional<ParsedOpLog> decodeOpLog(std::span<const uint8_t> bytes);

} // namespace asymnvm

#endif // ASYMNVM_BACKEND_LOG_FORMAT_H_
