#include "backend/log_format.h"

#include <cassert>

namespace asymnvm {

namespace {

template <typename T>
void
appendPod(std::vector<uint8_t> &buf, const T &v)
{
    const auto *p = reinterpret_cast<const uint8_t *>(&v);
    buf.insert(buf.end(), p, p + sizeof(T));
}

/** Interleave presence bytes into @p logical (zero-based encoding):
 *  one at every raw offset ≡ 63 (mod 64) plus the terminal byte. */
std::vector<uint8_t>
zbStuff(std::span<const uint8_t> logical, uint8_t seed)
{
    std::vector<uint8_t> out;
    out.reserve(zbWireLen(logical.size()));
    for (const uint8_t byte : logical) {
        if ((out.size() & 63) == 63)
            out.push_back(zbPresenceByte(seed, out.size()));
        out.push_back(byte);
    }
    out.push_back(zbPresenceByte(seed, out.size()));
    return out;
}

/**
 * Validate every presence byte (including the terminal one) of a
 * zero-based record and recover its @p logical_len logical bytes into
 * @p out. Any mismatch — in particular a still-zero byte where the ring
 * was never overwritten — means the record tore.
 */
bool
zbDestuff(std::span<const uint8_t> raw, size_t logical_len, uint8_t seed,
          std::vector<uint8_t> *out)
{
    const size_t raw_len = zbRawLen(logical_len);
    if (raw.size() < raw_len + 1)
        return false;
    out->clear();
    out->reserve(logical_len);
    for (size_t pos = 0; pos < raw_len; ++pos) {
        if ((pos & 63) == 63) {
            if (raw[pos] != zbPresenceByte(seed, pos))
                return false;
        } else {
            out->push_back(raw[pos]);
        }
    }
    if (raw[raw_len] != zbPresenceByte(seed, raw_len))
        return false;
    return out->size() == logical_len;
}

/**
 * Walk the entry stream of a transaction body (all formats share the
 * entry layout). Bounds checks compare against the remaining byte
 * count, never `p + len` — a torn/corrupt eh.len near UINT32_MAX would
 * overflow the pointer arithmetic (UB) and could wrap past `end`.
 * Unknown flag bytes are corruption, not implicit op-refs.
 */
bool
walkEntries(const uint8_t *p, const uint8_t *end, uint32_t num_entries,
            std::vector<ParsedMemLog> *out)
{
    for (uint32_t i = 0; i < num_entries; ++i) {
        if (static_cast<size_t>(end - p) < sizeof(MemLogEntryHeader))
            return false;
        MemLogEntryHeader eh;
        std::memcpy(&eh, p, sizeof(eh));
        p += sizeof(eh);
        if (eh.flag > static_cast<uint8_t>(MemLogFlag::kOpRef))
            return false;
        ParsedMemLog m{};
        m.flag = static_cast<MemLogFlag>(eh.flag);
        m.addr = RemotePtr::fromRaw(eh.addr_raw);
        m.len = eh.len;
        if (m.flag == MemLogFlag::kInline) {
            if (static_cast<size_t>(end - p) < eh.len)
                return false;
            m.inline_value = p;
            p += eh.len;
        } else {
            if (static_cast<size_t>(end - p) < 16)
                return false;
            std::memcpy(&m.oplog_off, p, 8);
            std::memcpy(&m.val_off, p + 8, 4);
            p += 16;
        }
        out->push_back(m);
    }
    return p == end;
}

} // namespace

const char *
logFormatName(LogFormatKind fmt)
{
    switch (fmt) {
      case LogFormatKind::Classic: return "classic";
      case LogFormatKind::HeaderDancing: return "header-dancing";
      case LogFormatKind::ZeroBased: return "zero-based";
    }
    return "?";
}

void
TxBuilder::reset(uint64_t lpn, uint64_t ds_id, uint64_t covered_opn)
{
    buf_.clear();
    entries_ = 0;
    finished_ = false;
    TxHeader hdr{};
    switch (fmt_) {
      case LogFormatKind::HeaderDancing: hdr.magic = kTxMagicHd; break;
      case LogFormatKind::ZeroBased: hdr.magic = kTxMagicZb; break;
      case LogFormatKind::Classic:
      default: hdr.magic = kTxMagic; break;
    }
    hdr.lpn = lpn;
    hdr.ds_id = ds_id;
    hdr.covered_opn = covered_opn;
    appendPod(buf_, hdr);
}

void
TxBuilder::addInline(RemotePtr addr, const void *value, uint32_t len)
{
    assert(!finished_);
    MemLogEntryHeader eh{};
    eh.flag = static_cast<uint8_t>(MemLogFlag::kInline);
    eh.len = len;
    eh.addr_raw = addr.raw();
    appendPod(buf_, eh);
    const auto *p = static_cast<const uint8_t *>(value);
    buf_.insert(buf_.end(), p, p + len);
    ++entries_;
}

void
TxBuilder::addOpRef(RemotePtr addr, uint64_t oplog_off, uint32_t val_off,
                    uint32_t len)
{
    assert(!finished_);
    MemLogEntryHeader eh{};
    eh.flag = static_cast<uint8_t>(MemLogFlag::kOpRef);
    eh.len = len;
    eh.addr_raw = addr.raw();
    appendPod(buf_, eh);
    appendPod(buf_, oplog_off);
    appendPod(buf_, val_off);
    uint32_t pad = 0;
    appendPod(buf_, pad);
    ++entries_;
}

std::span<const uint8_t>
TxBuilder::finish()
{
    assert(!finished_);
    auto *hdr = reinterpret_cast<TxHeader *>(buf_.data());
    hdr->num_entries = entries_;
    hdr->payload_len = static_cast<uint32_t>(buf_.size() - sizeof(TxHeader));
    switch (fmt_) {
      case LogFormatKind::HeaderDancing: {
        const size_t body = buf_.size();
        const uint64_t lpn = hdr->lpn;
        const uint32_t crc = crc32c(buf_.data(), body);
        buf_.resize(hdTxWireLen(body), 0); // hdr pointer now invalid
        TxFooter mark{};
        mark.commit_flag = kTxCommitHd;
        mark.checksum = crc;
        std::memcpy(buf_.data() + hdMarkSlot(body, lpn), &mark,
                    sizeof(mark));
        break;
      }
      case LogFormatKind::ZeroBased: {
        const uint8_t seed = zbSeed(hdr->lpn, hdr->ds_id);
        buf_ = zbStuff(buf_, seed);
        break;
      }
      case LogFormatKind::Classic:
      default: {
        TxFooter foot{};
        foot.commit_flag = kTxCommit;
        foot.checksum = crc32c(buf_.data(), buf_.size());
        appendPod(buf_, foot);
        break;
      }
    }
    finished_ = true;
    return {buf_.data(), buf_.size()};
}

std::optional<TxParser>
TxParser::parse(std::span<const uint8_t> bytes)
{
    if (bytes.size() < sizeof(TxHeader))
        return std::nullopt;
    TxParser tp;
    std::memcpy(&tp.hdr_, bytes.data(), sizeof(TxHeader));
    const std::optional<LogFormatKind> kind = txMagicKind(tp.hdr_.magic);
    if (!kind)
        return std::nullopt;
    tp.fmt_ = *kind;
    // 64-bit arithmetic: payload_len may be torn garbage near UINT32_MAX.
    const uint64_t body =
        sizeof(TxHeader) + static_cast<uint64_t>(tp.hdr_.payload_len);

    switch (tp.fmt_) {
      case LogFormatKind::Classic: {
        if (bytes.size() < body + sizeof(TxFooter))
            return std::nullopt;
        TxFooter foot;
        std::memcpy(&foot, bytes.data() + body, sizeof(TxFooter));
        if (foot.commit_flag != kTxCommit)
            return std::nullopt;
        if (foot.checksum != crc32c(bytes.data(), body))
            return std::nullopt;
        if (!walkEntries(bytes.data() + sizeof(TxHeader),
                         bytes.data() + body, tp.hdr_.num_entries,
                         &tp.entries_))
            return std::nullopt;
        break;
      }
      case LogFormatKind::HeaderDancing: {
        const uint64_t wire = hdTxWireLen(body);
        if (bytes.size() < wire)
            return std::nullopt;
        // The commit mark dances with the LPN through the 8 B slots of
        // the tail padding; its position is fully determined by header
        // fields, which the CRC then vouches for.
        TxFooter mark;
        std::memcpy(&mark, bytes.data() + hdMarkSlot(body, tp.hdr_.lpn),
                    sizeof(mark));
        if (mark.commit_flag != kTxCommitHd)
            return std::nullopt;
        if (mark.checksum != crc32c(bytes.data(), body))
            return std::nullopt;
        if (!walkEntries(bytes.data() + sizeof(TxHeader),
                         bytes.data() + body, tp.hdr_.num_entries,
                         &tp.entries_))
            return std::nullopt;
        break;
      }
      case LogFormatKind::ZeroBased: {
        const uint64_t wire = zbWireLen(body);
        if (bytes.size() < wire)
            return std::nullopt;
        const uint8_t seed = zbSeed(tp.hdr_.lpn, tp.hdr_.ds_id);
        if (!zbDestuff(bytes.first(wire), body, seed, &tp.destuffed_))
            return std::nullopt;
        if (!walkEntries(tp.destuffed_.data() + sizeof(TxHeader),
                         tp.destuffed_.data() + body, tp.hdr_.num_entries,
                         &tp.entries_))
            return std::nullopt;
        break;
      }
    }
    return tp;
}

std::vector<uint8_t>
encodeOpLog(LogFormatKind fmt, OpType op, uint64_t ds_id, uint64_t opn,
            Key key, const void *value, uint32_t val_len)
{
    // The compact header narrows ds_id to 16 bits; fall back to the
    // classic self-checksummed layout in the (never expected) overflow
    // case rather than truncating.
    if (fmt == LogFormatKind::Classic || ds_id > 0xffff)
        return encodeOpLog(op, ds_id, opn, key, value, val_len);

    OpLogHeaderC hdr{};
    hdr.op = static_cast<uint8_t>(op);
    hdr.ds_id = static_cast<uint16_t>(ds_id);
    hdr.val_len = val_len;
    hdr.opn = opn;
    hdr.key = key;

    if (fmt == LogFormatKind::HeaderDancing) {
        // check doubles as the commit mark: CRC over the header (with
        // check = 0) continued over the value bytes. The whole record
        // ships in one store; no trailing CRC word, no footer.
        hdr.magic = kOpMagicHd;
        uint32_t crc = crc32c(&hdr, sizeof(hdr));
        if (val_len > 0)
            crc = crc32c(value, val_len, crc);
        hdr.check = crc;
        std::vector<uint8_t> buf;
        buf.reserve(sizeof(hdr) + val_len);
        appendPod(buf, hdr);
        if (val_len > 0) {
            const auto *p = static_cast<const uint8_t *>(value);
            buf.insert(buf.end(), p, p + val_len);
        }
        return buf;
    }

    // Zero-based: validity lives in the presence bytes, check stays 0.
    hdr.magic = kOpMagicZb;
    std::vector<uint8_t> logical;
    logical.reserve(sizeof(hdr) + val_len);
    appendPod(logical, hdr);
    if (val_len > 0) {
        const auto *p = static_cast<const uint8_t *>(value);
        logical.insert(logical.end(), p, p + val_len);
    }
    return zbStuff(logical, zbSeed(opn, key));
}

std::vector<uint8_t>
encodeOpLog(OpType op, uint64_t ds_id, uint64_t opn, Key key,
            const void *value, uint32_t val_len)
{
    std::vector<uint8_t> buf;
    OpLogHeader hdr{};
    hdr.magic = kOpMagic;
    hdr.op = static_cast<uint8_t>(op);
    hdr.ds_id = ds_id;
    hdr.opn = opn;
    hdr.key = key;
    hdr.val_len = val_len;
    appendPod(buf, hdr);
    if (val_len > 0) {
        const auto *p = static_cast<const uint8_t *>(value);
        buf.insert(buf.end(), p, p + val_len);
    }
    const uint32_t crc = crc32c(buf.data(), buf.size());
    appendPod(buf, crc);
    return buf;
}

std::optional<ParsedOpLog>
decodeOpLog(std::span<const uint8_t> bytes)
{
    if (bytes.size() < sizeof(uint32_t))
        return std::nullopt;
    uint32_t magic;
    std::memcpy(&magic, bytes.data(), sizeof(magic));
    const std::optional<LogFormatKind> kind = opMagicKind(magic);
    if (!kind)
        return std::nullopt;

    if (*kind == LogFormatKind::Classic) {
        if (bytes.size() < sizeof(OpLogHeader) + sizeof(uint32_t))
            return std::nullopt;
        OpLogHeader hdr;
        std::memcpy(&hdr, bytes.data(), sizeof(hdr));
        if (hdr.op > kMaxOpTypeByte)
            return std::nullopt;
        const size_t body = sizeof(OpLogHeader) + hdr.val_len;
        if (bytes.size() < body + sizeof(uint32_t))
            return std::nullopt;
        uint32_t crc;
        std::memcpy(&crc, bytes.data() + body, sizeof(crc));
        if (crc != crc32c(bytes.data(), body))
            return std::nullopt;
        ParsedOpLog out;
        out.op = static_cast<OpType>(hdr.op);
        out.ds_id = hdr.ds_id;
        out.opn = hdr.opn;
        out.key = hdr.key;
        out.value.assign(bytes.begin() + sizeof(OpLogHeader),
                         bytes.begin() + body);
        out.wire_len = body + sizeof(uint32_t);
        return out;
    }

    // Compact header (the zero-based header is raw-readable: the first
    // presence byte sits at raw offset 63, past the 32 B header).
    if (bytes.size() < sizeof(OpLogHeaderC))
        return std::nullopt;
    OpLogHeaderC hdr;
    std::memcpy(&hdr, bytes.data(), sizeof(hdr));
    if (hdr.op > kMaxOpTypeByte)
        return std::nullopt;
    ParsedOpLog out;
    out.op = static_cast<OpType>(hdr.op);
    out.ds_id = hdr.ds_id;
    out.opn = hdr.opn;
    out.key = hdr.key;

    if (*kind == LogFormatKind::HeaderDancing) {
        const uint64_t wire =
            sizeof(OpLogHeaderC) + static_cast<uint64_t>(hdr.val_len);
        if (bytes.size() < wire)
            return std::nullopt;
        const uint32_t saved = hdr.check;
        hdr.check = 0;
        uint32_t crc = crc32c(&hdr, sizeof(hdr));
        if (hdr.val_len > 0)
            crc = crc32c(bytes.data() + sizeof(hdr), hdr.val_len, crc);
        if (crc != saved)
            return std::nullopt;
        out.value.assign(bytes.begin() + sizeof(OpLogHeaderC),
                         bytes.begin() + wire);
        out.wire_len = wire;
        return out;
    }

    const uint64_t logical =
        sizeof(OpLogHeaderC) + static_cast<uint64_t>(hdr.val_len);
    const uint64_t wire = zbWireLen(logical);
    if (bytes.size() < wire)
        return std::nullopt;
    std::vector<uint8_t> destuffed;
    if (!zbDestuff(bytes.first(wire), logical, zbSeed(hdr.opn, hdr.key),
                   &destuffed))
        return std::nullopt;
    out.value.assign(destuffed.begin() + sizeof(OpLogHeaderC),
                     destuffed.end());
    out.wire_len = wire;
    return out;
}

bool
extractOpLogValue(std::span<const uint8_t> rec, uint32_t val_off,
                  uint32_t len, uint8_t *out)
{
    if (rec.size() < sizeof(uint32_t))
        return false;
    uint32_t magic;
    std::memcpy(&magic, rec.data(), sizeof(magic));
    const std::optional<LogFormatKind> kind = opMagicKind(magic);
    if (!kind)
        return false;
    switch (*kind) {
      case LogFormatKind::Classic: {
        const size_t start = sizeof(OpLogHeader) + static_cast<size_t>(val_off);
        if (rec.size() < start + len)
            return false;
        std::memcpy(out, rec.data() + start, len);
        return true;
      }
      case LogFormatKind::HeaderDancing: {
        const size_t start =
            sizeof(OpLogHeaderC) + static_cast<size_t>(val_off);
        if (rec.size() < start + len)
            return false;
        std::memcpy(out, rec.data() + start, len);
        return true;
      }
      case LogFormatKind::ZeroBased: {
        const size_t first = sizeof(OpLogHeaderC) + static_cast<size_t>(val_off);
        for (uint32_t j = 0; j < len; ++j) {
            const size_t raw = zbRawPos(first + j);
            if (raw >= rec.size())
                return false;
            out[j] = rec[raw];
        }
        return true;
      }
    }
    return false;
}

} // namespace asymnvm
