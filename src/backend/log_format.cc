#include "backend/log_format.h"

#include <cassert>

namespace asymnvm {

namespace {

template <typename T>
void
appendPod(std::vector<uint8_t> &buf, const T &v)
{
    const auto *p = reinterpret_cast<const uint8_t *>(&v);
    buf.insert(buf.end(), p, p + sizeof(T));
}

} // namespace

void
TxBuilder::reset(uint64_t lpn, uint64_t ds_id, uint64_t covered_opn)
{
    buf_.clear();
    entries_ = 0;
    finished_ = false;
    TxHeader hdr{};
    hdr.magic = kTxMagic;
    hdr.lpn = lpn;
    hdr.ds_id = ds_id;
    hdr.covered_opn = covered_opn;
    appendPod(buf_, hdr);
}

void
TxBuilder::addInline(RemotePtr addr, const void *value, uint32_t len)
{
    assert(!finished_);
    MemLogEntryHeader eh{};
    eh.flag = static_cast<uint8_t>(MemLogFlag::kInline);
    eh.len = len;
    eh.addr_raw = addr.raw();
    appendPod(buf_, eh);
    const auto *p = static_cast<const uint8_t *>(value);
    buf_.insert(buf_.end(), p, p + len);
    ++entries_;
}

void
TxBuilder::addOpRef(RemotePtr addr, uint64_t oplog_off, uint32_t val_off,
                    uint32_t len)
{
    assert(!finished_);
    MemLogEntryHeader eh{};
    eh.flag = static_cast<uint8_t>(MemLogFlag::kOpRef);
    eh.len = len;
    eh.addr_raw = addr.raw();
    appendPod(buf_, eh);
    appendPod(buf_, oplog_off);
    appendPod(buf_, val_off);
    uint32_t pad = 0;
    appendPod(buf_, pad);
    ++entries_;
}

std::span<const uint8_t>
TxBuilder::finish()
{
    assert(!finished_);
    auto *hdr = reinterpret_cast<TxHeader *>(buf_.data());
    hdr->num_entries = entries_;
    hdr->payload_len = static_cast<uint32_t>(buf_.size() - sizeof(TxHeader));
    TxFooter foot{};
    foot.commit_flag = kTxCommit;
    foot.checksum = crc32c(buf_.data(), buf_.size());
    appendPod(buf_, foot);
    finished_ = true;
    return {buf_.data(), buf_.size()};
}

std::optional<TxParser>
TxParser::parse(std::span<const uint8_t> bytes)
{
    if (bytes.size() < sizeof(TxHeader) + sizeof(TxFooter))
        return std::nullopt;
    TxParser tp;
    std::memcpy(&tp.hdr_, bytes.data(), sizeof(TxHeader));
    if (tp.hdr_.magic != kTxMagic)
        return std::nullopt;
    const size_t body = sizeof(TxHeader) + tp.hdr_.payload_len;
    if (bytes.size() < body + sizeof(TxFooter))
        return std::nullopt;
    TxFooter foot;
    std::memcpy(&foot, bytes.data() + body, sizeof(TxFooter));
    if (foot.commit_flag != kTxCommit)
        return std::nullopt;
    if (foot.checksum != crc32c(bytes.data(), body))
        return std::nullopt;

    // Bounds checks below compare against the remaining byte count, never
    // `p + len` — a torn/corrupt eh.len near UINT32_MAX would overflow the
    // pointer arithmetic (UB) and could wrap past `end`.
    const uint8_t *p = bytes.data() + sizeof(TxHeader);
    const uint8_t *end = bytes.data() + body;
    for (uint32_t i = 0; i < tp.hdr_.num_entries; ++i) {
        if (static_cast<size_t>(end - p) < sizeof(MemLogEntryHeader))
            return std::nullopt;
        MemLogEntryHeader eh;
        std::memcpy(&eh, p, sizeof(eh));
        p += sizeof(eh);
        ParsedMemLog m{};
        m.flag = static_cast<MemLogFlag>(eh.flag);
        m.addr = RemotePtr::fromRaw(eh.addr_raw);
        m.len = eh.len;
        if (m.flag == MemLogFlag::kInline) {
            if (static_cast<size_t>(end - p) < eh.len)
                return std::nullopt;
            m.inline_value = p;
            p += eh.len;
        } else {
            if (static_cast<size_t>(end - p) < 16)
                return std::nullopt;
            std::memcpy(&m.oplog_off, p, 8);
            std::memcpy(&m.val_off, p + 8, 4);
            p += 16;
        }
        tp.entries_.push_back(m);
    }
    if (p != end)
        return std::nullopt;
    return tp;
}

std::vector<uint8_t>
encodeOpLog(OpType op, uint64_t ds_id, uint64_t opn, Key key,
            const void *value, uint32_t val_len)
{
    std::vector<uint8_t> buf;
    OpLogHeader hdr{};
    hdr.magic = kOpMagic;
    hdr.op = static_cast<uint8_t>(op);
    hdr.ds_id = ds_id;
    hdr.opn = opn;
    hdr.key = key;
    hdr.val_len = val_len;
    appendPod(buf, hdr);
    if (val_len > 0) {
        const auto *p = static_cast<const uint8_t *>(value);
        buf.insert(buf.end(), p, p + val_len);
    }
    const uint32_t crc = crc32c(buf.data(), buf.size());
    appendPod(buf, crc);
    return buf;
}

std::optional<ParsedOpLog>
decodeOpLog(std::span<const uint8_t> bytes)
{
    if (bytes.size() < sizeof(OpLogHeader) + sizeof(uint32_t))
        return std::nullopt;
    OpLogHeader hdr;
    std::memcpy(&hdr, bytes.data(), sizeof(hdr));
    if (hdr.magic != kOpMagic)
        return std::nullopt;
    const size_t body = sizeof(OpLogHeader) + hdr.val_len;
    if (bytes.size() < body + sizeof(uint32_t))
        return std::nullopt;
    uint32_t crc;
    std::memcpy(&crc, bytes.data() + body, sizeof(crc));
    if (crc != crc32c(bytes.data(), body))
        return std::nullopt;
    ParsedOpLog out;
    out.op = static_cast<OpType>(hdr.op);
    out.ds_id = hdr.ds_id;
    out.opn = hdr.opn;
    out.key = hdr.key;
    out.value.assign(bytes.begin() + sizeof(OpLogHeader),
                     bytes.begin() + body);
    out.wire_len = body + sizeof(uint32_t);
    return out;
}

} // namespace asymnvm
