#include "backend/allocator.h"

#include <cassert>

namespace asymnvm {

BackendAllocator::BackendAllocator(NvmDevice *nvm, const Layout &layout,
                                   NvmWriter writer)
    : nvm_(nvm), layout_(layout), writer_(std::move(writer))
{
    const uint64_t words = (layout_.super.data_blocks + 63) / 64;
    bitmap_.assign(words, 0);
    free_blocks_ = layout_.super.data_blocks;
}

void
BackendAllocator::recover()
{
    const uint64_t words = (layout_.super.data_blocks + 63) / 64;
    bitmap_.assign(words, 0);
    nvm_->read(layout_.super.bitmap_off, bitmap_.data(), words * 8);
    free_blocks_ = 0;
    for (uint64_t b = 0; b < layout_.super.data_blocks; ++b) {
        if (!testBit(b))
            ++free_blocks_;
    }
    rover_ = 0;
}

bool
BackendAllocator::testBit(uint64_t block) const
{
    return (bitmap_[block / 64] >> (block % 64)) & 1;
}

void
BackendAllocator::setBits(uint64_t first, uint64_t count, bool value)
{
    for (uint64_t b = first; b < first + count; ++b) {
        if (value)
            bitmap_[b / 64] |= 1ull << (b % 64);
        else
            bitmap_[b / 64] &= ~(1ull << (b % 64));
    }
    // Persist the touched bitmap words through the owner's write hook.
    const uint64_t w0 = first / 64;
    const uint64_t w1 = (first + count - 1) / 64;
    writer_(layout_.super.bitmap_off + w0 * 8, &bitmap_[w0],
            (w1 - w0 + 1) * 8);
}

Status
BackendAllocator::alloc(uint64_t nblocks, uint64_t *off)
{
    if (nblocks == 0)
        return Status::InvalidArgument;
    const uint64_t total = layout_.super.data_blocks;
    if (nblocks > free_blocks_)
        return Status::OutOfMemory;
    // Next-fit scan for a contiguous run, wrapping once.
    uint64_t scanned = 0;
    uint64_t run = 0;
    uint64_t pos = rover_;
    while (scanned < 2 * total) {
        if (pos >= total) {
            pos = 0;
            run = 0; // runs do not wrap across the end of the area
        }
        if (!testBit(pos)) {
            if (++run == nblocks) {
                const uint64_t first = pos + 1 - nblocks;
                setBits(first, nblocks, true);
                free_blocks_ -= nblocks;
                rover_ = pos + 1;
                *off = layout_.dataOff() +
                       first * layout_.super.block_size;
                return Status::Ok;
            }
        } else {
            run = 0;
        }
        ++pos;
        ++scanned;
    }
    return Status::OutOfMemory; // fragmented
}

Status
BackendAllocator::free(uint64_t off, uint64_t nblocks)
{
    if (off < layout_.dataOff() || nblocks == 0)
        return Status::InvalidArgument;
    const uint64_t rel = off - layout_.dataOff();
    if (rel % layout_.super.block_size != 0)
        return Status::InvalidArgument;
    const uint64_t first = rel / layout_.super.block_size;
    if (first + nblocks > layout_.super.data_blocks)
        return Status::InvalidArgument;
    for (uint64_t b = first; b < first + nblocks; ++b) {
        if (!testBit(b))
            return Status::InvalidArgument; // double free
    }
    setBits(first, nblocks, false);
    free_blocks_ += nblocks;
    return Status::Ok;
}

bool
BackendAllocator::isAllocated(uint64_t off) const
{
    if (off < layout_.dataOff())
        return false;
    const uint64_t block =
        (off - layout_.dataOff()) / layout_.super.block_size;
    if (block >= layout_.super.data_blocks)
        return false;
    return testBit(block);
}

} // namespace asymnvm
