#ifndef ASYMNVM_ASYMNVM_H_
#define ASYMNVM_ASYMNVM_H_

/**
 * @file
 * Umbrella header: the public API of the AsymNVM framework.
 *
 * A typical application includes this single header and uses:
 *
 *   Cluster          — back-end NVM blades + mirrors + keepAlive wiring
 *   FrontendSession  — the per-thread client runtime (Table 1 API)
 *   Stack/Queue/HashTable/SkipList/Bst/BpTree/MvBst/MvBpTree
 *                    — the persistent data structures of Section 8
 *   Partitioned<DS>  — key-hash partitioning across back-ends
 *   BlobStore        — variable-size values on the same substrate
 *   SmallBank/Tatp   — the transaction applications of Section 9
 *
 * See README.md for a quickstart and DESIGN.md for the architecture.
 */

#include "apps/smallbank.h"
#include "apps/tatp.h"
#include "cluster/cluster.h"
#include "common/types.h"
#include "ds/blob_store.h"
#include "ds/bptree.h"
#include "ds/bst.h"
#include "ds/hash_table.h"
#include "ds/mv_bptree.h"
#include "ds/mv_bst.h"
#include "ds/partitioned.h"
#include "ds/queue.h"
#include "ds/skiplist.h"
#include "ds/stack.h"
#include "frontend/session.h"
#include "workload/workload.h"

#endif // ASYMNVM_ASYMNVM_H_
