#include "frontend/session.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <thread>

#include "common/hash.h"

namespace asymnvm {

// ---------------------------------------------------------------------
// SessionConfig presets (the system rows of Table 3)
// ---------------------------------------------------------------------

SessionConfig
SessionConfig::naive(uint64_t id)
{
    SessionConfig c;
    c.session_id = id;
    c.use_oplog = false;
    c.use_txlog = false;
    c.use_cache = false;
    c.batch_size = 1;
    return c;
}

SessionConfig
SessionConfig::r(uint64_t id)
{
    SessionConfig c;
    c.session_id = id;
    c.use_oplog = true;
    c.use_txlog = true;
    c.use_cache = false;
    c.batch_size = 1;
    return c;
}

SessionConfig
SessionConfig::rc(uint64_t id, uint64_t cache_bytes)
{
    SessionConfig c = r(id);
    c.use_cache = true;
    c.cache_bytes = cache_bytes;
    return c;
}

SessionConfig
SessionConfig::rcb(uint64_t id, uint64_t cache_bytes, uint32_t batch)
{
    SessionConfig c = rc(id, cache_bytes);
    c.batch_size = batch;
    return c;
}

SessionConfig
SessionConfig::symmetricBase(uint64_t id, bool batched)
{
    SessionConfig c;
    c.session_id = id;
    c.symmetric = true;
    c.symmetric_batch = batched;
    c.use_cache = false; // data is already local
    c.batch_size = batched ? 1024 : 1;
    return c;
}

// ---------------------------------------------------------------------
// Construction / connection
// ---------------------------------------------------------------------

FrontendSession::FrontendSession(const SessionConfig &cfg,
                                 const LatencyModel &lat)
    : cfg_(cfg), lat_(lat), verbs_(&clock_, &lat_)
{
    verbs_.setQpId(cfg_.qp_id != 0 ? cfg_.qp_id : cfg_.session_id);
    cache_ = std::make_unique<PageCache>(cfg_.cache_policy,
                                         cfg_.cache_bytes, &clock_, &lat_,
                                         cfg_.cache_sample_k,
                                         cfg_.rng_seed);
    if (cfg_.symmetric) {
        // The symmetric primary ships its logs to a remote mirror over
        // the same verbs endpoint (postWrite chain + doorbell) the
        // asymmetric group commit uses, so both baselines pay identical
        // wire mechanics per shipped byte.
        sym_replica_ = std::make_unique<NvmDevice>(kSymLogRingSize);
        sym_nic_ = std::make_unique<NicModel>(lat_.nic_verb_service_ns);
        RdmaTarget t;
        t.nvm = sym_replica_.get();
        t.nic = sym_nic_.get();
        verbs_.attach(kSymReplicaId, t);
    }
}

FrontendSession::~FrontendSession() = default;

Status
FrontendSession::connect(BackendNode *backend)
{
    BackendCtx c;
    c.node = backend;
    const Status st = backend->registerFrontend(cfg_.session_id, &c.slot);
    if (!ok(st))
        return st;
    verbs_.attach(backend->id(), backend->rdmaTarget());
    c.rpc = std::make_unique<RfpRpc>(&verbs_, backend, c.slot);

    auto it = backends_.emplace(backend->id(), std::move(c)).first;
    BackendCtx &ctx = it->second;
    ctx.alloc = std::make_unique<FrontendAllocator>(
        backend->id(), backend->config().block_size,
        [this, id = backend->id()](RpcOp op, std::span<const uint64_t> a,
                                   std::span<const uint8_t> p,
                                   uint64_t r[4]) {
            return rpcCall(backends_.at(id), op, a, p, r);
        },
        /*reclaim_threshold=*/32, cfg_.alloc_hysteresis_cycles);

    // Fetch the persisted log positions (one-sided read of the control
    // block), which restores the shadows after a reconnect.
    const LogControl ctl = backend->readControl(ctx.slot);
    if (!cfg_.symmetric)
        clock_.advance(lat_.rdma_read_rtt_ns +
                       lat_.wireBytes(sizeof(LogControl)));
    else
        clock_.advance(lat_.nvm_read_ns);
    ctx.lpn = ctl.lpn;
    ctx.opn = ctl.opn;
    ctx.memlog_head = ctl.memlog_head;
    ctx.oplog_head = ctl.oplog_head;
    return Status::Ok;
}

void
FrontendSession::disconnect(BackendNode *backend)
{
    auto it = backends_.find(backend->id());
    if (it == backends_.end())
        return;
    backend->unregisterFrontend(it->second.slot);
    verbs_.detach(backend->id());
    backends_.erase(it);
}

FrontendSession::BackendCtx *
FrontendSession::ctx(NodeId id)
{
    auto it = backends_.find(id);
    return it == backends_.end() ? nullptr : &it->second;
}

const FrontendSession::BackendCtx *
FrontendSession::ctx(NodeId id) const
{
    auto it = backends_.find(id);
    return it == backends_.end() ? nullptr : &it->second;
}

Status
FrontendSession::rpcCall(BackendCtx &c, RpcOp op,
                         std::span<const uint64_t> args,
                         std::span<const uint8_t> payload, uint64_t rets[4])
{
    if (cfg_.symmetric) {
        // Local back-end: a function call, not a network round trip.
        clock_.advance(lat_.cpu_op_overhead_ns + lat_.persist_fence_ns);
        switch (op) {
          case RpcOp::AllocBlocks:
            return c.node->rpcAllocBlocks(args[0], &rets[0]);
          case RpcOp::FreeBlocks:
            return c.node->rpcFreeBlocks(args[0], args[1]);
          case RpcOp::CreateName: {
            DsId id = 0;
            const Status st = c.node->rpcCreateName(
                args[0], static_cast<DsType>(args[1]), &id);
            if (rets != nullptr)
                rets[0] = id;
            return st;
          }
          case RpcOp::LookupName: {
            DsId id = 0;
            DsType type = DsType::None;
            const Status st = c.node->rpcLookupName(args[0], &id, &type);
            if (rets != nullptr) {
                rets[0] = id;
                rets[1] = static_cast<uint64_t>(type);
            }
            return st;
          }
          case RpcOp::Retire: {
            std::vector<std::pair<uint64_t, uint64_t>> regions(args[1]);
            for (uint64_t i = 0; i < args[1]; ++i) {
                std::memcpy(&regions[i].first, payload.data() + i * 16, 8);
                std::memcpy(&regions[i].second,
                            payload.data() + i * 16 + 8, 8);
            }
            return c.node->rpcRetire(static_cast<DsId>(args[0]), regions,
                                     clock_.now());
          }
          case RpcOp::None:
            break;
        }
        return Status::InvalidArgument;
    }
    // The RPC channel is exactly-once under transient faults (seq-based
    // dedup), and a failover rebuilds c.rpc against the replacement, so
    // the re-run goes through the fresh channel.
    const NodeId id = c.node->id();
    return guarded(id, [&] { return c.rpc->call(op, args, payload, rets); });
}

// ---------------------------------------------------------------------
// Read path (gather): overlay -> pin -> cache -> remote
// ---------------------------------------------------------------------

bool
FrontendSession::overlayLookup(RemotePtr addr, void *dst,
                               uint32_t len) const
{
    auto it = overlay_.find(addr.raw());
    if (it == overlay_.end() || it->second.size() != len)
        return false;
    std::memcpy(dst, it->second.data(), len);
    return true;
}

void
FrontendSession::overlayInsert(RemotePtr addr, const void *value,
                               uint32_t len)
{
    auto &slot = overlay_[addr.raw()];
    slot.assign(static_cast<const uint8_t *>(value),
                static_cast<const uint8_t *>(value) + len);
}

Status
FrontendSession::symmetricRead(RemotePtr addr, void *dst, uint32_t len)
{
    BackendCtx *c = ctx(addr.backend);
    if (c == nullptr)
        return Status::Unavailable;
    c->node->nvm().read(addr.offset, dst, len);
    clock_.advance(lat_.nvm_read_ns);
    return Status::Ok;
}

Status
FrontendSession::read(RemotePtr addr, void *dst, uint32_t len,
                      const ReadHint &hint)
{
    // Reads are idempotent, so the whole lookup path (overlay, pins,
    // cache, remote) can transparently re-run after a failover heals the
    // back-end under it.
    const uint64_t t0 = clock_.now();
    last_read_remote_ = false;
    const Status st = guarded(
        addr.backend, [&] { return readInner(addr, dst, len, hint); });
    (last_read_remote_ ? hist_read_remote_ : hist_read_local_)
        .record(clock_.now() - t0);
    return st;
}

Status
FrontendSession::readInner(RemotePtr addr, void *dst, uint32_t len,
                           const ReadHint &hint)
{
    if (tracking_)
        tracked_reads_.push_back(addr);

    // 1. Read-your-writes: buffered memory logs shadow remote state.
    if (!overlay_.empty() && overlayLookup(addr, dst, len)) {
        clock_.advance(lat_.dram_access_ns);
        return Status::Ok;
    }
    // 2. Batch-local pins (vector operations reread shared path nodes).
    if (hint.pin && !pinned_.empty()) {
        auto it = pinned_.find(addr.raw());
        if (it != pinned_.end() && it->second.size() == len) {
            std::memcpy(dst, it->second.data(), len);
            clock_.advance(lat_.dram_access_ns);
            return Status::Ok;
        }
    }
    if (cfg_.symmetric)
        return symmetricRead(addr, dst, len);

    // 3. Front-end DRAM cache.
    const bool cacheable = cfg_.use_cache && hint.cacheable;
    if (cfg_.read_prefetch && cacheable && hint.stream != 0)
        prefetch_.onAccess(hint.ds, hint.stream, addr.raw(), len);
    const bool admitted = hint.admission == nullptr ||
                          hint.admission->admit(hint.level);
    if (cacheable && cache_->lookup(addr, dst, len)) {
        if (hint.admission != nullptr && admitted)
            hint.admission->record(true);
        return Status::Ok;
    }
    // 4. Remote NVM, gathering speculative neighbor reads in the same
    // doorbell when the hint carries any (read-side doorbell batching).
    last_read_remote_ = true;
    const Status st = remoteReadWithPrefetch(addr, dst, len, hint);
    if (!ok(st))
        return st;
    if (cacheable && admitted) {
        // Only admitted levels feed the miss-ratio window; reads the
        // threshold excludes by design must not drag N further down.
        if (hint.admission != nullptr)
            hint.admission->record(false);
        cache_->insert(hint.ds, addr, dst, len);
    }
    if (hint.pin) {
        auto &slot = pinned_[addr.raw()];
        slot.assign(static_cast<uint8_t *>(dst),
                    static_cast<uint8_t *>(dst) + len);
    }
    return Status::Ok;
}

Status
FrontendSession::remoteReadWithPrefetch(RemotePtr addr, void *dst,
                                        uint32_t len, const ReadHint &hint)
{
    const bool eligible = cfg_.read_prefetch && cfg_.use_cache &&
                          hint.cacheable && cfg_.prefetch_degree > 0 &&
                          (!hint.neighbors.empty() || hint.stream != 0);
    if (!eligible)
        return verbs_.read(addr, dst, len);

    prefetch_scratch_.clear();
    prefetch_scratch_.insert(prefetch_scratch_.end(),
                             hint.neighbors.begin(), hint.neighbors.end());
    prefetch_.collect(hint.ds, hint.stream, addr.raw(),
                      &prefetch_scratch_);

    // Keep only candidates worth the wire bytes: dedupe, drop the
    // demanded address, other back-ends, and anything already resident
    // (overlay or cache); truncate to the configured degree.
    size_t kept = 0;
    for (size_t i = 0;
         i < prefetch_scratch_.size() && kept < cfg_.prefetch_degree;
         ++i) {
        const PrefetchCandidate c = prefetch_scratch_[i];
        if (c.addr_raw == 0 || c.len == 0 || c.addr_raw == addr.raw())
            continue;
        const RemotePtr p = RemotePtr::fromRaw(c.addr_raw);
        if (p.isNull() || p.backend != addr.backend)
            continue;
        bool dup = false;
        for (size_t j = 0; j < kept; ++j)
            if (prefetch_scratch_[j].addr_raw == c.addr_raw) {
                dup = true;
                break;
            }
        if (dup || (!overlay_.empty() && overlay_.count(c.addr_raw) != 0))
            continue;
        if (cache_->contains(p, c.len))
            continue;
        prefetch_scratch_[kept++] = c;
    }
    if (kept == 0)
        return verbs_.read(addr, dst, len);

    if (prefetch_bufs_.size() < kept)
        prefetch_bufs_.resize(kept);
    // Epoch snapshot BEFORE the gather: an invalidateDs that lands while
    // the chain is in flight must outrank the fetched bytes.
    const uint64_t issue_epoch = cache_->epochNow();
    verbs_.postRead(addr, dst, len);
    for (size_t i = 0; i < kept; ++i) {
        prefetch_bufs_[i].resize(prefetch_scratch_[i].len);
        verbs_.postRead(RemotePtr::fromRaw(prefetch_scratch_[i].addr_raw),
                        prefetch_bufs_[i].data(),
                        prefetch_scratch_[i].len);
    }
    const Status st = verbs_.readGather();
    if (st == Status::InvalidArgument) {
        // A learned candidate fell outside the target (stale prediction
        // over reclaimed NVM): forget the structure's predictions and
        // serve the demanded read alone.
        prefetch_.invalidateDs(hint.ds);
        return verbs_.read(addr, dst, len);
    }
    if (!ok(st))
        return st;
    ++prefetch_batches_;
    prefetch_issued_ += kept;
    for (size_t i = 0; i < kept; ++i) {
        const RemotePtr p =
            RemotePtr::fromRaw(prefetch_scratch_[i].addr_raw);
        cache_->insertSpeculative(hint.ds, p, prefetch_bufs_[i].data(),
                                  prefetch_scratch_[i].len, issue_epoch);
        // Speculative bytes are subject to the same seqlock-conflict
        // invalidation as the demanded read.
        if (tracking_)
            tracked_reads_.push_back(p);
    }
    return Status::Ok;
}

// ---------------------------------------------------------------------
// Pipelined operations: coroutine reactor over the read-gather verbs
// ---------------------------------------------------------------------

bool
FrontendSession::ReadAwaitable::await_ready()
{
    if (!s->pipeline_active_) {
        // No reactor owns the session (or depth 1): degrade to the
        // serial read path — same verbs, same clock charges, same
        // histograms. Depth-1 pipelined runs are bit-identical to
        // serial ones by this fall-through.
        result = s->read(addr, dst, len, hint);
        served_seq = s->pipe_write_seq_; // 0 outside a window
        return true;
    }
    const uint64_t t0 = s->clock_.now();
    if (s->pipelineLocalRead(*this)) {
        s->hist_read_local_.record(s->clock_.now() - t0);
        return true;
    }
    return false; // remote miss: park with the reactor and suspend
}

void
FrontendSession::ReadAwaitable::await_suspend(std::coroutine_handle<>)
{
    // The awaitable lives in the coroutine frame, which stays alive
    // until the reactor resumes the op past this co_await — so parking
    // a raw pointer is safe.
    s->pending_reads_.push_back(this);
}

bool
FrontendSession::pipelineLocalRead(ReadAwaitable &aw)
{
    // Mirrors readInner steps 1-3 exactly (order and clock charges): an
    // op must observe the same overlay/pin/cache state pipelined as it
    // would serially.
    aw.served_seq = pipe_write_seq_; // service happens now (or at park)
    if (tracking_)
        tracked_reads_.push_back(aw.addr);
    if (!overlay_.empty() && overlayLookup(aw.addr, aw.dst, aw.len)) {
        clock_.advance(lat_.dram_access_ns);
        aw.result = Status::Ok;
        return true;
    }
    if (aw.hint.pin && !pinned_.empty()) {
        auto it = pinned_.find(aw.addr.raw());
        if (it != pinned_.end() && it->second.size() == aw.len) {
            std::memcpy(aw.dst, it->second.data(), aw.len);
            clock_.advance(lat_.dram_access_ns);
            aw.result = Status::Ok;
            return true;
        }
    }
    if (cfg_.symmetric) {
        aw.result = symmetricRead(aw.addr, aw.dst, aw.len);
        return true;
    }
    aw.cacheable = cfg_.use_cache && aw.hint.cacheable;
    if (cfg_.read_prefetch && aw.cacheable && aw.hint.stream != 0)
        prefetch_.onAccess(aw.hint.ds, aw.hint.stream, aw.addr.raw(),
                           aw.len);
    aw.admitted = aw.hint.admission == nullptr ||
                  aw.hint.admission->admit(aw.hint.level);
    if (aw.cacheable && cache_->lookup(aw.addr, aw.dst, aw.len)) {
        if (aw.hint.admission != nullptr && aw.admitted)
            aw.hint.admission->record(true);
        aw.result = Status::Ok;
        return true;
    }
    return false;
}

bool
FrontendSession::pipelineRecheckLocal(ReadAwaitable &aw)
{
    const uint64_t t0 = clock_.now();
    if (!overlay_.empty() && overlayLookup(aw.addr, aw.dst, aw.len)) {
        clock_.advance(lat_.dram_access_ns);
        aw.result = Status::Ok;
        hist_read_local_.record(clock_.now() - t0);
        return true;
    }
    if (aw.hint.pin && !pinned_.empty()) {
        auto it = pinned_.find(aw.addr.raw());
        if (it != pinned_.end() && it->second.size() == aw.len) {
            std::memcpy(aw.dst, it->second.data(), aw.len);
            clock_.advance(lat_.dram_access_ns);
            aw.result = Status::Ok;
            hist_read_local_.record(clock_.now() - t0);
            return true;
        }
    }
    // Admission was decided pre-suspend; do NOT re-run onAccess/admit —
    // the serial path consults them exactly once per read.
    if (aw.cacheable && cache_->lookup(aw.addr, aw.dst, aw.len)) {
        if (aw.hint.admission != nullptr && aw.admitted)
            aw.hint.admission->record(true);
        aw.result = Status::Ok;
        hist_read_local_.record(clock_.now() - t0);
        return true;
    }
    return false;
}

void
FrontendSession::pipelineRefreshIfStale(ReadAwaitable &aw)
{
    if (!ok(aw.result))
        return;
    const auto it = pipe_dirty_.find(aw.addr.raw());
    if (it == pipe_dirty_.end() || it->second <= aw.served_seq)
        return;
    if (pipelineRecheckLocal(aw))
        aw.served_seq = pipe_write_seq_;
}

void
FrontendSession::serveBatchRound()
{
    if (pending_reads_.empty())
        return;
    std::vector<ReadAwaitable *> round = std::move(pending_reads_);
    pending_reads_.clear();
    // A sibling op's window write may have landed at a parked read's
    // address after it suspended: such reads re-run the local tiers
    // (overlay now holds the fresh bytes — read-your-writes) instead of
    // fetching a stale remote image. Reads at clean addresses skip the
    // recheck entirely, so write-free (read-only) rounds are untouched.
    std::vector<ReadAwaitable *> remote;
    remote.reserve(round.size());
    for (ReadAwaitable *aw : round) {
        aw->served_seq = pipe_write_seq_; // service time is now
        if (pipe_dirty_.count(aw->addr.raw()) != 0 &&
            pipelineRecheckLocal(*aw))
            continue;
        remote.push_back(aw);
    }
    if (remote.empty())
        return; // everything was served locally: not a gather round
    round = std::move(remote);
    ++pipe_rounds_;
    if (round.size() <= 1)
        ++pipe_solo_rounds_; // nothing to overlap with: a pipeline stall
    pipe_batched_reads_ += round.size();
    const uint64_t t0 = clock_.now();

    // Dedupe demanded addresses across ops: the first op fetches, the
    // rest copy its bytes (two lookups of one hot node share the wire).
    std::vector<ReadAwaitable *> primaries;
    primaries.reserve(round.size());
    std::vector<std::pair<ReadAwaitable *, ReadAwaitable *>> copies;
    for (ReadAwaitable *aw : round) {
        ReadAwaitable *prim = nullptr;
        for (ReadAwaitable *p : primaries) {
            if (p->addr.raw() == aw->addr.raw() && p->len == aw->len) {
                prim = p;
                break;
            }
        }
        if (prim != nullptr)
            copies.emplace_back(aw, prim);
        else
            primaries.push_back(aw);
    }

    // Speculative neighbors per op, filtered as the serial path filters
    // (dedupe, resident-anywhere, wrong back-end), additionally
    // excluding this round's demanded addresses — the round itself is
    // the best prefetch.
    struct Spec
    {
        uint64_t addr_raw;
        uint32_t len;
        DsId ds;
    };
    std::vector<Spec> specs;
    for (ReadAwaitable *aw : primaries) {
        const bool eligible =
            cfg_.read_prefetch && cfg_.use_cache && aw->hint.cacheable &&
            cfg_.prefetch_degree > 0 &&
            (!aw->hint.neighbors.empty() || aw->hint.stream != 0);
        if (!eligible)
            continue;
        prefetch_scratch_.clear();
        prefetch_scratch_.insert(prefetch_scratch_.end(),
                                 aw->hint.neighbors.begin(),
                                 aw->hint.neighbors.end());
        prefetch_.collect(aw->hint.ds, aw->hint.stream, aw->addr.raw(),
                          &prefetch_scratch_);
        uint32_t kept = 0;
        for (const PrefetchCandidate &c : prefetch_scratch_) {
            if (kept >= cfg_.prefetch_degree)
                break;
            if (c.addr_raw == 0 || c.len == 0)
                continue;
            const RemotePtr p = RemotePtr::fromRaw(c.addr_raw);
            if (p.isNull() || p.backend != aw->addr.backend)
                continue;
            bool dup = false;
            for (const ReadAwaitable *d : primaries)
                if (d->addr.raw() == c.addr_raw) {
                    dup = true;
                    break;
                }
            for (size_t j = 0; !dup && j < specs.size(); ++j)
                if (specs[j].addr_raw == c.addr_raw)
                    dup = true;
            if (dup ||
                (!overlay_.empty() && overlay_.count(c.addr_raw) != 0))
                continue;
            if (cache_->contains(p, c.len))
                continue;
            specs.push_back({c.addr_raw, c.len, aw->hint.ds});
            ++kept;
        }
    }

    // Epoch snapshot BEFORE the gather: an invalidateDs landing while
    // the chain is in flight outranks the fetched bytes (the same
    // guard the serial prefetch uses — it is what keeps interleaved
    // ops' cache fills coherent).
    const uint64_t issue_epoch = cache_->epochNow();
    std::vector<ReadAwaitable *> posted;
    posted.reserve(primaries.size());
    for (ReadAwaitable *aw : primaries) {
        const Status pst = verbs_.postRead(aw->addr, aw->dst, aw->len);
        if (ok(pst))
            posted.push_back(aw);
        else
            aw->result = pst;
    }
    if (prefetch_bufs_.size() < specs.size())
        prefetch_bufs_.resize(specs.size());
    size_t nspec = 0;
    for (const Spec &sp : specs) {
        prefetch_bufs_[nspec].resize(sp.len);
        if (ok(verbs_.postRead(RemotePtr::fromRaw(sp.addr_raw),
                               prefetch_bufs_[nspec].data(), sp.len)))
            specs[nspec++] = sp;
    }
    specs.resize(nspec);
    verbs_.tagGatherOps(posted.size());
    Status st = verbs_.readGather();
    if (st == Status::InvalidArgument && !specs.empty()) {
        // A learned candidate fell outside the target (stale prediction
        // over reclaimed NVM): forget those predictions and re-run the
        // round with the demanded reads alone.
        for (const Spec &sp : specs)
            prefetch_.invalidateDs(sp.ds);
        specs.clear();
        for (ReadAwaitable *aw : posted)
            verbs_.postRead(aw->addr, aw->dst, aw->len);
        verbs_.tagGatherOps(posted.size());
        st = verbs_.readGather();
    }
    if (!ok(st)) {
        // All-or-nothing chain failed on the demanded set itself (torn
        // pointer out of bounds, back-end crash): serve each demanded
        // read individually so only the broken op fails — exactly the
        // status its serial traversal would have seen.
        for (ReadAwaitable *aw : posted)
            aw->result = verbs_.read(aw->addr, aw->dst, aw->len);
    } else {
        for (ReadAwaitable *aw : posted)
            aw->result = Status::Ok;
        if (!specs.empty()) {
            ++prefetch_batches_;
            prefetch_issued_ += specs.size();
            for (size_t i = 0; i < specs.size(); ++i) {
                const RemotePtr p = RemotePtr::fromRaw(specs[i].addr_raw);
                cache_->insertSpeculative(specs[i].ds, p,
                                          prefetch_bufs_[i].data(),
                                          specs[i].len, issue_epoch);
                if (tracking_)
                    tracked_reads_.push_back(p);
            }
        }
    }
    for (auto &[dup, prim] : copies) {
        dup->result = prim->result;
        if (ok(prim->result)) {
            std::memcpy(dup->dst, prim->dst, dup->len);
            clock_.advance(lat_.dram_access_ns);
        }
    }
    // Post-miss bookkeeping each op's serial path would have done
    // (admission window, cache fill, batch-local pin).
    for (ReadAwaitable *aw : round) {
        if (!ok(aw->result))
            continue;
        if (aw->cacheable && aw->admitted) {
            if (aw->hint.admission != nullptr)
                aw->hint.admission->record(false);
            cache_->insert(aw->hint.ds, aw->addr, aw->dst, aw->len);
        }
        if (aw->hint.pin) {
            auto &slot = pinned_[aw->addr.raw()];
            slot.assign(static_cast<uint8_t *>(aw->dst),
                        static_cast<uint8_t *>(aw->dst) + aw->len);
        }
        hist_read_remote_.record(clock_.now() - t0);
    }
}

void
FrontendSession::executePipelined(std::span<OpTask> ops,
                                  std::span<Status> results)
{
    assert(results.size() >= ops.size());
    const uint32_t depth = std::max<uint32_t>(1, cfg_.pipeline_depth);
    if (depth <= 1 || ops.size() <= 1 || pipeline_active_) {
        // Serial baseline: with no reactor active, asyncRead never
        // suspends, so one resume() drives each op to completion through
        // the unchanged read/commit paths. Under a re-entrant call (an
        // outer reactor already owns scheduling) an op CAN suspend on a
        // parked read — drive it through service rounds until done; the
        // outer window's single drain flush still fences everything, so
        // no extra commit is charged here.
        for (size_t i = 0; i < ops.size(); ++i) {
            ops[i].resume();
            while (!ops[i].done()) {
                serveBatchRound();
                ops[i].resume();
            }
            results[i] = ops[i].status();
        }
        return;
    }
    pipeline_active_ = true;
    ++pipe_runs_;
    std::vector<size_t> window; // in-flight (suspended) op indices
    window.reserve(depth);
    size_t next = 0;
    // Drive one op to its next suspension point; false once it is done.
    auto pump = [&](size_t i) {
        ops[i].resume();
        if (ops[i].done()) {
            results[i] = ops[i].status();
            ++pipe_ops_;
            return false;
        }
        return true;
    };
    auto admit = [&] {
        while (window.size() < depth && next < ops.size()) {
            const size_t i = next++;
            if (pump(i))
                window.push_back(i);
        }
    };
    admit();
    while (!window.empty()) {
        pipe_max_in_flight_ =
            std::max<uint64_t>(pipe_max_in_flight_, window.size());
        // Every in-flight op is parked on exactly one demanded read:
        // serve them all as one gather wave, then resume each op, which
        // either finishes, re-parks at its next hop, or frees a window
        // slot for the next admission.
        serveBatchRound();
        for (size_t w = 0; w < window.size();) {
            if (pump(window[w]))
                ++w;
            else
                window.erase(window.begin() + w);
        }
        admit();
    }
    pipeline_active_ = false;
    // Window-scoped conflict state dies with the window: gates were
    // released at each op's co_return (these clears are insurance for
    // ops destroyed mid-flight), and the dirty map only orders reads
    // against writes *within* one window.
    pipe_gates_.clear();
    pipe_dirty_.clear();
    pipe_write_seq_ = 0;
    if (pipeline_commit_deferred_) {
        // In-flight ops' batch boundaries were coalesced: one group
        // commit fences every posted op-log/memlog chain at window
        // drain (composing with — not fighting — doorbell batching).
        pipeline_commit_deferred_ = false;
        ++pipe_deferred_commits_;
        (void)flushAll();
    }
}

// ---------------------------------------------------------------------
// Write-pipelining window primitives (gates, op-ref capture)
// ---------------------------------------------------------------------

bool
FrontendSession::WindowGate::tryAcquire()
{
    if (ticket_ != 0)
        return true; // already holding the key
    if (!s_->pipeline_active_)
        return true; // serial: no sibling ops can exist
    auto it = s_->pipe_gates_.find(key_);
    if (it == s_->pipe_gates_.end()) {
        ticket_ = ++s_->pipe_ticket_;
        s_->pipe_gates_.emplace(key_, ticket_);
        return true;
    }
    if (!stalled_) {
        // One dependency stall per wait episode, however many service
        // rounds the waiter sleeps through.
        stalled_ = true;
        ++s_->pipe_dep_stalls_;
    }
    return false;
}

void
FrontendSession::WindowGate::release()
{
    if (ticket_ == 0)
        return;
    auto it = s_->pipe_gates_.find(key_);
    if (it != s_->pipe_gates_.end() && it->second == ticket_)
        s_->pipe_gates_.erase(it);
    ticket_ = 0;
    stalled_ = false;
}

FrontendSession::OpRef
FrontendSession::currentOpRef(NodeId backend) const
{
    const BackendCtx *c = ctx(backend);
    if (c == nullptr)
        return OpRef{};
    return OpRef{c->last_oplog_pos, c->last_oplog_len};
}

void
FrontendSession::restoreOpRef(NodeId backend, const OpRef &ref)
{
    BackendCtx *c = ctx(backend);
    if (c == nullptr)
        return;
    // Serially this is a no-op (nothing ran since opBegin); inside a
    // window it re-points op-ref encoding at THIS op's record after
    // sibling opBegins moved the shadows during the suspendable phase.
    c->last_oplog_pos = ref.pos;
    c->last_oplog_len = ref.len;
}

// ---------------------------------------------------------------------
// Write path (apply): op log -> memory logs -> group commit
// ---------------------------------------------------------------------

Status
FrontendSession::symmetricWrite(RemotePtr addr, const void *value,
                                uint32_t len)
{
    BackendCtx *c = ctx(addr.backend);
    if (c == nullptr)
        return Status::Unavailable;
    c->node->nvm().write(addr.offset, value, len);
    c->node->nvm().persist();
    // Local persistence is paid per cache line: every 64B of a node
    // must be written back (clwb) to the DIMM individually.
    clock_.advance(lat_.nvm_write_ns * ((len + 63) / 64));
    // Ship the log record for this write to the remote mirror through
    // the same posted-WQE chain the asymmetric commit uses: consecutive
    // ring positions merge into one wire write, and the doorbell (plus
    // remote persist fence) is paid at the shipping point — per op
    // without batching, per group with Symmetric-B (see opEnd/flushAll).
    const uint64_t pos = sym_log_head_ % kSymLogRingSize;
    const uint64_t room = kSymLogRingSize - pos;
    const RemotePtr dst(kSymReplicaId, len <= room ? pos : 0);
    verbs_.postWrite(dst, value, len);
    sym_log_head_ = (len <= room ? sym_log_head_ : sym_log_head_ + room) +
                    len;
    return Status::Ok;
}

Status
FrontendSession::logWrite(DsId ds, RemotePtr addr, const void *value,
                          uint32_t len)
{
    return logWriteInternal(ds, addr, value, len, /*op_ref=*/false, 0);
}

Status
FrontendSession::logWriteFromOp(DsId ds, RemotePtr addr,
                                const void *value, uint32_t len,
                                uint32_t val_off)
{
    BackendCtx *c = ctx(addr.backend);
    const bool can_ref = cfg_.use_opref && cfg_.use_oplog &&
                         cfg_.use_txlog && !cfg_.symmetric &&
                         c != nullptr &&
                         val_off + len <= c->last_oplog_len;
    return logWriteInternal(ds, addr, value, len, can_ref, val_off);
}

Status
FrontendSession::logWriteInternal(DsId ds, RemotePtr addr,
                                  const void *value, uint32_t len,
                                  bool op_ref, uint32_t val_off)
{
    if (pipeline_active_) {
        // Window write: stamp the address so sibling descents that read
        // it earlier fail read-set validation (and parked reads re-check
        // the local tiers instead of fetching a stale remote image).
        // Bookkeeping only — no clock charge, no wire traffic.
        pipe_dirty_[addr.raw()] = ++pipe_write_seq_;
    }
    if (cfg_.symmetric)
        return symmetricWrite(addr, value, len);
    if (!cfg_.use_txlog) {
        // Naive: a synchronous RDMA_Write per modification (idempotent
        // payload, so a healed back-end can transparently take a rerun).
        return guarded(addr.backend,
                       [&] { return verbs_.write(addr, value, len); });
    }
    BackendCtx *c = ctx(addr.backend);
    if (c == nullptr)
        return Status::Unavailable;

    overlayInsert(addr, value, len);
    if (cfg_.use_cache)
        cache_->update(addr, value, len);
    clock_.advance(lat_.dram_access_ns); // build the log entry in DRAM

    auto &group = c->groups[ds];
    const uint64_t raw = addr.raw();
    auto idx = cfg_.coalesce_memlogs ? group.index.find(raw)
                                     : group.index.end();
    if (idx != group.index.end() && group.logs[idx->second].len == len) {
        // Coalesce: a later write to the same address supersedes the
        // earlier memory log ("compacted to one NVM write", Section 8.3).
        // Same length, so the value overwrites its arena slot in place.
        BackendCtx::GroupEntry &e = group.logs[idx->second];
        const uint64_t old_cost = e.op_ref ? 16 : e.len;
        std::memcpy(group.arena.data() + e.arena_off, value, len);
        e.op_ref = op_ref;
        e.oplog_pos = c->last_oplog_pos;
        e.val_off = val_off;
        // Coalescing can flip the entry between op-ref (16 B on the wire)
        // and inline (len B); track it or the spill threshold drifts.
        group.bytes = group.bytes - old_cost + (op_ref ? 16 : len);
    } else {
        group.index[raw] = group.logs.size();
        BackendCtx::GroupEntry e;
        e.addr = addr;
        e.arena_off = static_cast<uint32_t>(group.arena.size());
        e.len = len;
        e.op_ref = op_ref;
        e.oplog_pos = c->last_oplog_pos;
        e.val_off = val_off;
        group.arena.insert(group.arena.end(),
                           static_cast<const uint8_t *>(value),
                           static_cast<const uint8_t *>(value) + len);
        group.logs.push_back(e);
        group.bytes += (op_ref ? 16 : len) + sizeof(MemLogEntryHeader);
    }
    if (group.bytes >= cfg_.memlog_buffer_cap) {
        // Buffer full: spill the memory logs (not a commit point).
        return flushGroup(*c, ds, false);
    }
    return Status::Ok;
}

Status
FrontendSession::opBegin(DsId ds, NodeId backend, OpType op, Key key,
                         const void *value, uint32_t val_len)
{
    ++ops_started_;
    in_op_ = false; // a previous op may have aborted without opEnd
    clock_.advance(lat_.cpu_op_overhead_ns);
    if (cfg_.symmetric || !cfg_.use_oplog) {
        in_op_ = true;
        return Status::Ok;
    }
    // Re-resolve the context on every attempt: a failover in between
    // refreshes the log-position shadows (and the OPN) from the
    // replacement's control block. A first attempt that died mid-write
    // left at most a torn record, which recovery's decode skips.
    const Status st = guarded(backend, [&]() -> Status {
        BackendCtx *c = ctx(backend);
        if (c == nullptr)
            return Status::Unavailable;
        const auto rec = encodeOpLog(cfg_.log_format, op, ds, c->opn, key,
                                     value, val_len);
        // Per-op persistence (batch == 1) makes the op log the write's
        // durability point: one synchronous RDMA_Write (Section 4.3).
        // Inside a batch — or inside an active pipeline window, whose
        // drain flush is the fence — op logs are posted and ride the
        // doorbell chain.
        const bool sync = cfg_.batch_size <= 1 && !pipeline_active_;
        const Status ast = appendOpLogRecord(*c, rec, sync);
        if (!ok(ast))
            return ast;
        if (!sync && pipeline_active_) {
            pipeline_posted_ops_ = true;
            ++pipe_batched_appends_; // rode the WQE chain, not a fence
        }
        logfmt_.op_records += 1;
        logfmt_.op_wire_bytes += rec.size();
        logfmt_.op_payload_bytes += val_len;
        c->last_oplog_len = val_len;
        c->opn += 1;
        return Status::Ok;
    });
    if (ok(st))
        in_op_ = true;
    return st;
}

Status
FrontendSession::appendOpLogRecord(BackendCtx &c,
                                   const std::vector<uint8_t> &rec,
                                   bool sync)
{
    const Layout &lay = c.node->layout();
    const uint64_t ring = lay.super.oplog_ring_size;
    const uint64_t base = lay.oplogRingOff(c.slot);
    const uint64_t pos = ringReserve(&c.oplog_head, ring, base,
                                     c.node->id(), rec.size(), sync);
    c.last_oplog_pos = pos;
    const RemotePtr dst(c.node->id(), base + pos % ring);
    // Batched appends join the doorbell chain, where consecutive ring
    // positions merge into one RDMA_Write; the group commit's synchronous
    // transaction write is the fence that launches and covers them.
    const Status st = sync ? verbs_.write(dst, rec.data(), rec.size())
                           : verbs_.postWrite(dst, rec.data(), rec.size());
    if (!ok(st))
        return st;
    return c.node->onOpLogAppended(c.slot, pos,
                                   static_cast<uint32_t>(rec.size()),
                                   clock_.now(), /*fenced=*/sync);
}

uint64_t
FrontendSession::ringReserve(uint64_t *head, uint64_t ring_size,
                             uint64_t ring_base, NodeId backend, size_t len,
                             bool sync)
{
    assert(len <= ring_size);
    const uint64_t off = *head % ring_size;
    if (off + len > ring_size) {
        // Pad the lap tail so recovery scans cannot misparse stale bytes:
        // a skip marker when one fits, zeroes for a sub-4-byte remainder.
        // The pad must reach NVM no later than the record written past it,
        // so it follows the caller's synchrony.
        const uint64_t tail = ring_size - off;
        const RemotePtr dst(backend, ring_base + off);
        if (tail >= sizeof(uint32_t)) {
            const uint32_t skip = kSkipMagic;
            if (sync)
                verbs_.write(dst, &skip, sizeof(skip));
            else
                verbs_.postWrite(dst, &skip, sizeof(skip));
        } else if (tail > 0) {
            const uint8_t zeros[4] = {0, 0, 0, 0};
            if (sync)
                verbs_.write(dst, zeros, tail);
            else
                verbs_.postWrite(dst, zeros, tail);
        }
        *head = (*head / ring_size + 1) * ring_size;
    }
    const uint64_t pos = *head;
    *head += len;
    return pos;
}

Status
FrontendSession::opEnd()
{
    in_op_ = false; // batch flush below happens at a safe boundary
    ++ops_in_batch_;
    if (cfg_.symmetric) {
        if (!cfg_.symmetric_batch) {
            // Ship this op's logs now: launch the posted chain with one
            // doorbell and fence it at the replica (remote persist).
            const uint64_t t0 = clock_.now();
            verbs_.ringDoorbell();
            clock_.advance(lat_.persist_fence_ns);
            hist_commit_.record(clock_.now() - t0);
            ops_in_batch_ = 0;
            return Status::Ok;
        }
        if (ops_in_batch_ >= cfg_.batch_size)
            return flushAll();
        return Status::Ok;
    }
    if (ops_in_batch_ >= cfg_.batch_size) {
        if (pipeline_active_) {
            // Other in-flight ops are suspended mid-traversal: defer the
            // group commit to the window drain, where ONE flush fences
            // every pipelined op's posted chain together.
            pipeline_commit_deferred_ = true;
            ++pipe_coalesced_fences_; // this op's fence moved to drain
            processLocalRetired();
            return Status::Ok;
        }
        return flushAll();
    }
    processLocalRetired();
    return Status::Ok;
}

void
FrontendSession::processLocalRetired()
{
    while (!local_retired_.empty() &&
           local_retired_.front().free_at_ns <= clock_.now()) {
        const auto item = local_retired_.front();
        local_retired_.pop_front();
        free(item.ptr, item.size);
    }
}

Status
FrontendSession::flushGroup(BackendCtx &c, DsId ds, bool sync_commit)
{
    auto git = c.groups.find(ds);
    if (git == c.groups.end() || git->second.logs.empty()) {
        c.groups.erase(ds);
        return Status::Ok;
    }
    const uint64_t covered =
        git->second.covered_opn.value_or(c.opn);
    const uint64_t oplog_ring = c.node->layout().super.oplog_ring_size;
    TxBuilder builder(cfg_.log_format);
    builder.reset(c.lpn, ds, covered);
    uint64_t payload_bytes = 0;
    for (const auto &e : git->second.logs) {
        payload_bytes += e.len;
        // An op-ref is only valid while the referenced record is still
        // in the ring (always true for sane batch/ring ratios).
        const bool ref_ok =
            e.op_ref && c.oplog_head - e.oplog_pos < oplog_ring;
        if (ref_ok) {
            builder.addOpRef(e.addr, e.oplog_pos, e.val_off, e.len);
        } else {
            builder.addInline(e.addr,
                              git->second.arena.data() + e.arena_off,
                              e.len);
        }
    }
    const auto tx = builder.finish();
    clock_.advance(lat_.cpu_op_overhead_ns); // serialize in DRAM

    const Layout &lay = c.node->layout();
    const uint64_t ring = lay.super.memlog_ring_size;
    const uint64_t base = lay.memlogRingOff(c.slot);
    const uint64_t pos = ringReserve(&c.memlog_head, ring, base,
                                     c.node->id(), tx.size(), sync_commit);
    const RemotePtr dst(c.node->id(), base + pos % ring);
    // Non-commit transaction writes ride the doorbell chain with the op
    // logs; the synchronous commit write drains the chain first (queue-
    // pair ordering), making it the whole batch's persistence point.
    const Status st =
        sync_commit ? verbs_.write(dst, tx.data(), tx.size())
                    : verbs_.postWrite(dst, tx.data(), tx.size());
    c.groups.erase(git);
    if (!ok(st))
        return st;
    const Status bst = c.node->onTxAppended(
        c.slot, pos, static_cast<uint32_t>(tx.size()), clock_.now());
    if (!ok(bst))
        return bst;
    c.lpn += 1;
    ++tx_flushes_;
    logfmt_.tx_records += 1;
    logfmt_.tx_wire_bytes += tx.size();
    logfmt_.tx_payload_bytes += payload_bytes;
    return Status::Ok;
}

void
FrontendSession::setFlushHook(DsId ds, NodeId backend,
                              std::function<void()> fn)
{
    flush_hooks_[{backend, ds}] = std::move(fn);
}

void
FrontendSession::setPostFlushHook(DsId ds, NodeId backend,
                                  std::function<void()> fn)
{
    post_flush_hooks_[{backend, ds}] = std::move(fn);
}

void
FrontendSession::setGroupCoverage(DsId ds, NodeId backend,
                                  uint64_t covered_opn)
{
    BackendCtx *c = ctx(backend);
    if (c != nullptr)
        c->groups[ds].covered_opn = covered_opn;
}

uint64_t
FrontendSession::currentOpn(NodeId backend) const
{
    const BackendCtx *c = ctx(backend);
    return c == nullptr ? 0 : c->opn;
}

Status
FrontendSession::flushAll()
{
    const Status st = flushAllInner();
    if (!needsFailover(st) || resolver_ == nullptr || in_failover_)
        return st;
    // The commit write died with the back-end. Heal — and that is all:
    // every op of the interrupted batch persisted (and replicated) its
    // operation log before being acked, so the replacement's recovery
    // re-executed and re-flushed the whole batch during failover.
    if (!ok(handleBackendFailure(last_failed_node_)))
        return st;
    return Status::Ok;
}

Status
FrontendSession::flushAllInner()
{
    if (in_flush_)
        return Status::Ok;
    in_flush_ = true;
    // Materialize deferred operations (stack/queue annulment survivors)
    // before serializing the batch's memory logs.
    for (auto &[ds, fn] : flush_hooks_)
        fn();
    in_flush_ = false;
    if (cfg_.symmetric) {
        // Ship the accumulated log chain to the remote replica: one
        // doorbell launches every posted log write (Symmetric-B ships the
        // whole batch; per-op mode shipped at each opEnd) and one remote
        // persist fences it — the same wire mechanics as the asymmetric
        // group commit, so Table 3 compares like for like.
        const uint64_t t0 = clock_.now();
        verbs_.ringDoorbell();
        clock_.advance(lat_.persist_fence_ns);
        hist_commit_.record(clock_.now() - t0);
        ops_in_batch_ = 0;
        held_locks_.clear();
        return Status::Ok;
    }
    const uint64_t commit_t0 = clock_.now();
    Status result = Status::Ok;
    // The final transaction write is the batch's commit point when op
    // logs were posted asynchronously inside the batch — including op
    // logs a pipelined window posted at nominal batch_size 1, whose
    // durability point moved here (the drain flush).
    const bool need_sync =
        cfg_.use_txlog && (cfg_.batch_size > 1 || !cfg_.use_oplog ||
                           pipeline_posted_ops_);
    pipeline_posted_ops_ = false;
    // Collect the flush plan first so we know which write is last.
    // backends_ is an ordered map, so the plan is grouped by back-end.
    std::vector<std::pair<BackendCtx *, DsId>> plan;
    for (auto &[id, c] : backends_) {
        for (auto &[ds, group] : c.groups) {
            if (!group.logs.empty())
                plan.emplace_back(&c, ds);
        }
    }
    size_t nbackends = 0;
    for (size_t i = 0; i < plan.size(); ++i) {
        if (i == 0 || plan[i].first != plan[i - 1].first)
            ++nbackends;
    }
    // A commit spanning several back-ends overlaps its round trips: every
    // group is posted (no per-back-end fence), all doorbells ring, and
    // ringDoorbellFanout awaits the slowest completion. The serial
    // baseline (parallel_fanout off) instead issues each back-end's
    // commit write synchronously — k fences back to back. A single-back-
    // end commit keeps the one-sync-write path untouched.
    const bool fanout =
        need_sync && nbackends > 1 && cfg_.parallel_fanout;
    for (size_t i = 0; i < plan.size(); ++i) {
        const bool last_of_backend =
            i + 1 == plan.size() || plan[i + 1].first != plan[i].first;
        bool sync;
        if (fanout)
            sync = false;
        else if (nbackends > 1)
            sync = need_sync && last_of_backend;
        else
            sync = need_sync && i + 1 == plan.size();
        const Status st = flushGroup(*plan[i].first, plan[i].second, sync);
        if (!ok(st)) {
            result = st;
            last_failed_node_ = plan[i].first->node->id();
        }
    }
    if (fanout && ok(result)) {
        const uint64_t t0 = clock_.now();
        verbs_.ringDoorbellFanout();
        hist_fanout_.record(clock_.now() - t0);
    }
    if (plan.empty() && need_sync && ops_in_batch_ > 0 && cfg_.use_oplog) {
        // Read-annulled batches (stack/queue) may commit with no memory
        // logs at all; the op logs still sit on the doorbell chain, so
        // launch it and fence it — overlapped across back-ends when the
        // chain spans more than one.
        if (cfg_.parallel_fanout && backends_.size() > 1) {
            verbs_.ringDoorbellFanout();
        } else {
            verbs_.ringDoorbell();
            clock_.advance(lat_.rdma_write_rtt_ns);
        }
    }

    // A failed commit must not publish roots, retire old versions, or
    // release locks: the batch is not durable, so recovery (not this
    // flush) decides its fate. Stale locks are released by the recovery
    // protocol's lock-ahead scan (Section 7).
    if (!ok(result)) {
        verbs_.dropPosted(); // the chain died with the back-end
        overlay_.clear();
        pinned_.clear();
        ops_in_batch_ = 0;
        return result;
    }

    // Publish multi-version roots now that the batch is durable.
    for (auto &[ds, fn] : post_flush_hooks_)
        fn();

    // Ship deferred MV retirements and reclaim locally-due regions.
    for (auto &[id, c] : backends_) {
        if (!c.retired.empty()) {
            std::vector<uint8_t> payload(c.retired.size() * 16);
            for (size_t i = 0; i < c.retired.size(); ++i) {
                std::memcpy(payload.data() + i * 16, &c.retired[i].first,
                            8);
                std::memcpy(payload.data() + i * 16 + 8,
                            &c.retired[i].second, 8);
            }
            uint64_t args[3] = {c.retired_ds, c.retired.size(),
                                clock_.now()};
            rpcCall(c, RpcOp::Retire, args, payload, nullptr);
            // Hand the regions to the local delayed-free queue.
            for (const auto &[off, size] : c.retired)
                local_retired_.push_back(
                    {RemotePtr(id, off), size,
                     clock_.now() + c.node->config().gc_delay_ns});
            c.retired.clear();
        }
    }
    processLocalRetired();

    overlay_.clear();
    pinned_.clear();
    ops_in_batch_ = 0;

    // Release writer locks only after the batch is durable. The three
    // release records are posted onto the doorbell chain *behind* the
    // commit write: the queue pair executes WQEs in order, so another
    // front-end can only observe the lock free after the batch's logs
    // are in NVM.
    auto locks = held_locks_;
    held_locks_.clear();
    for (const auto &[key, held] : locks) {
        if (!held)
            continue;
        const auto [backend, ds] = key;
        BackendCtx *c = ctx(backend);
        if (c == nullptr)
            continue;
        const uint64_t gen = ++writer_gen_[key];
        verbs_.postWrite(namingField(ds, backend, naming_field::kAux0 +
                                                      3 * 8),
                         &gen, sizeof(gen));
        // Release the lock word BEFORE clearing the lock-ahead record: a
        // crash between the two leaves the lock-ahead set with the lock
        // already free, which recovery's releaseStaleLocks handles. The
        // reverse order would strand a held lock with no lock-ahead
        // record to find it by. Chain order preserves exactly this.
        const uint64_t zero = 0;
        verbs_.postWrite(namingField(ds, backend,
                                     naming_field::kWriterLock),
                         &zero, sizeof(zero));
        verbs_.postWrite(
            RemotePtr(backend, c->node->layout().logControlOff(c->slot) +
                                   offsetof(LogControl, lock_ahead)),
            &zero, sizeof(zero));
    }
    // One trailing doorbell launches whatever is still chained (lock
    // releases, posted transactions of non-final groups, aux updates).
    verbs_.ringDoorbell();
    if (!plan.empty())
        hist_commit_.record(clock_.now() - commit_t0);
    return result;
}

// ---------------------------------------------------------------------
// Allocation
// ---------------------------------------------------------------------

Status
FrontendSession::alloc(NodeId backend, uint64_t size, RemotePtr *out)
{
    BackendCtx *c = ctx(backend);
    if (c == nullptr)
        return Status::Unavailable;
    clock_.advance(lat_.dram_access_ns); // free-list walk
    return c->alloc->alloc(size, out);
}

Status
FrontendSession::free(RemotePtr p, uint64_t size)
{
    BackendCtx *c = ctx(p.backend);
    if (c == nullptr)
        return Status::Unavailable;
    if (pipeline_active_) {
        // A freed node's bytes may be reused within the window: poison
        // any sibling descent that read it before the free landed.
        pipe_dirty_[p.raw()] = ++pipe_write_seq_;
    }
    clock_.advance(lat_.dram_access_ns);
    if (cfg_.use_cache)
        cache_->invalidate(p);
    return c->alloc->free(p, size);
}

void
FrontendSession::retire(DsId ds, RemotePtr p, uint64_t size)
{
    BackendCtx *c = ctx(p.backend);
    if (c == nullptr)
        return;
    c->retired.emplace_back(p.offset, size);
    c->retired_ds = ds;
}

// ---------------------------------------------------------------------
// Concurrency control
// ---------------------------------------------------------------------

RemotePtr
FrontendSession::namingField(DsId ds, NodeId backend, uint64_t field_off)
{
    BackendCtx *c = ctx(backend);
    assert(c != nullptr);
    return RemotePtr(backend, c->node->layout().namingEntryOff(ds) +
                                  field_off);
}

Status
FrontendSession::writerLock(DsId ds, NodeId backend)
{
    const auto key = std::make_pair(backend, ds);
    if (held_locks_.count(key) != 0)
        return Status::Ok;
    BackendCtx *c = ctx(backend);
    if (c == nullptr)
        return Status::Unavailable;
    if (cfg_.symmetric) {
        clock_.advance(lat_.dram_access_ns);
        held_locks_[key] = true;
        return Status::Ok;
    }
    // Acquisition is re-runnable after a failover: the replacement's
    // recovery released any lock this session's previous target recorded
    // for it, so a fresh CAS starts over cleanly.
    return guarded(backend, [&]() -> Status {
        BackendCtx *gc = ctx(backend);
        if (gc == nullptr)
            return Status::Unavailable;
        const RemotePtr lock_ptr =
            namingField(ds, backend, naming_field::kWriterLock);
        const uint64_t self = static_cast<uint64_t>(gc->slot) + 1;
        while (true) {
            uint64_t old = 0;
            const Status st =
                verbs_.compareAndSwap(lock_ptr, 0, self, &old);
            if (!ok(st))
                return st;
            if (old == 0 || old == self)
                break;
            std::this_thread::yield(); // another writer holds the lock
        }
        // Lock-ahead record: lets recovery identify and release the lock
        // if we crash while holding it (Section 6.1). Posted before any
        // logs.
        const uint64_t ahead = static_cast<uint64_t>(ds) + 1;
        verbs_.writeAsync(
            RemotePtr(backend, gc->node->layout().logControlOff(gc->slot) +
                                   offsetof(LogControl, lock_ahead)),
            &ahead, sizeof(ahead));

        // Another writer may have modified the structure since we last
        // held the lock; a changed writer generation invalidates our
        // cache.
        uint64_t gen = 0;
        const Status gst = verbs_.read64(
            namingField(ds, backend, naming_field::kAux0 + 3 * 8), &gen);
        if (!ok(gst))
            return gst;
        auto git = writer_gen_.find(key);
        if (git == writer_gen_.end() || git->second != gen) {
            if (cfg_.use_cache)
                cache_->invalidateDs(ds);
            prefetch_.invalidateDs(ds); // learned runs may be stale too
            writer_gen_[key] = gen;
        }
        held_locks_[key] = true;
        return Status::Ok;
    });
}

Status
FrontendSession::writerUnlock(DsId ds, NodeId backend)
{
    const auto key = std::make_pair(backend, ds);
    if (held_locks_.count(key) == 0)
        return Status::Ok;
    // The flush releases every held lock after the commit.
    return flushAll();
}

bool
FrontendSession::holdsWriterLock(DsId ds, NodeId backend) const
{
    return held_locks_.count(std::make_pair(backend, ds)) != 0;
}

Status
FrontendSession::readerLock(DsId ds, NodeId backend, uint64_t *sn)
{
    const RemotePtr sn_ptr = namingField(ds, backend,
                                         naming_field::kSeqNum);
    if (cfg_.symmetric) {
        BackendCtx *c = ctx(backend);
        *sn = c->node->nvm().read64(sn_ptr.offset);
        clock_.advance(lat_.nvm_read_ns);
    } else {
        while (true) {
            const Status st = guarded(
                backend, [&] { return verbs_.read64(sn_ptr, sn); });
            if (!ok(st))
                return st;
            if ((*sn & 1) == 0)
                break;
            std::this_thread::yield(); // replay in progress
        }
    }
    // A moved SN means the structure changed since our last critical
    // section: every cached copy of it may be stale.
    const auto key = std::make_pair(backend, ds);
    auto it = sn_seen_.find(key);
    if (it == sn_seen_.end()) {
        sn_seen_[key] = *sn;
    } else if (it->second != *sn) {
        if (cfg_.use_cache)
            cache_->invalidateDs(ds);
        prefetch_.invalidateDs(ds);
        it->second = *sn;
    }
    tracking_ = true;
    tracked_reads_.clear();
    return Status::Ok;
}

bool
FrontendSession::readerValidate(DsId ds, NodeId backend, uint64_t sn)
{
    tracking_ = false;
    uint64_t now_sn = 0;
    if (cfg_.symmetric) {
        BackendCtx *c = ctx(backend);
        now_sn = c->node->nvm().read64(
            namingField(ds, backend, naming_field::kSeqNum).offset);
        clock_.advance(lat_.nvm_read_ns);
    } else {
        const Status st = guarded(backend, [&] {
            return verbs_.read64(
                namingField(ds, backend, naming_field::kSeqNum), &now_sn);
        });
        if (!ok(st))
            return false;
    }
    if (now_sn == sn)
        return true;
    // Conflict: drop every cache entry this read touched so the retry
    // fetches fresh data instead of spinning on stale copies.
    if (cfg_.use_cache) {
        for (const RemotePtr &p : tracked_reads_)
            cache_->invalidate(p);
    }
    tracked_reads_.clear();
    return false;
}

// ---------------------------------------------------------------------
// Naming space
// ---------------------------------------------------------------------

Status
FrontendSession::createDs(NodeId backend, std::string_view name,
                          DsType type, DsId *id)
{
    BackendCtx *c = ctx(backend);
    if (c == nullptr)
        return Status::Unavailable;
    uint64_t args[2] = {fnv1a64(name), static_cast<uint64_t>(type)};
    uint64_t rets[4] = {};
    const Status st = rpcCall(*c, RpcOp::CreateName, args, {}, rets);
    if (!ok(st))
        return st;
    *id = static_cast<DsId>(rets[0]);
    return Status::Ok;
}

Status
FrontendSession::openDs(NodeId backend, std::string_view name, DsId *id,
                        DsType *type)
{
    BackendCtx *c = ctx(backend);
    if (c == nullptr)
        return Status::Unavailable;
    uint64_t args[1] = {fnv1a64(name)};
    uint64_t rets[4] = {};
    const Status st = rpcCall(*c, RpcOp::LookupName, args, {}, rets);
    if (!ok(st))
        return st;
    *id = static_cast<DsId>(rets[0]);
    if (type != nullptr)
        *type = static_cast<DsType>(rets[1]);
    return Status::Ok;
}

Status
FrontendSession::readDsMeta(DsId ds, NodeId backend, DsMeta *out)
{
    const RemotePtr base = namingField(ds, backend, naming_field::kRoot);
    uint64_t buf[3];
    if (cfg_.symmetric) {
        BackendCtx *c = ctx(backend);
        c->node->nvm().read(base.offset, buf, sizeof(buf));
        clock_.advance(lat_.nvm_read_ns);
    } else {
        const Status st = guarded(
            backend, [&] { return verbs_.read(base, buf, sizeof(buf)); });
        if (!ok(st))
            return st;
    }
    out->root_raw = buf[0];
    out->version = buf[1];
    out->gc_epoch = buf[2];
    const auto gc_key = std::make_pair(backend, ds);
    auto it = gc_epoch_seen_.find(gc_key);
    if (it == gc_epoch_seen_.end()) {
        gc_epoch_seen_[gc_key] = out->gc_epoch;
    } else if (it->second != out->gc_epoch) {
        // Retired versions were reclaimed; cached nodes may alias reused
        // NVM now (Section 6.2). Learned prefetch runs hold the same
        // stale addresses, so they go too.
        if (cfg_.use_cache)
            cache_->invalidateDs(ds);
        prefetch_.invalidateDs(ds);
        it->second = out->gc_epoch;
    }
    return Status::Ok;
}

Status
FrontendSession::casRoot(DsId ds, NodeId backend, uint64_t expected_raw,
                         uint64_t desired_raw, uint64_t *old_raw)
{
    const RemotePtr root = namingField(ds, backend, naming_field::kRoot);
    if (cfg_.symmetric) {
        BackendCtx *c = ctx(backend);
        *old_raw = c->node->nvm().compareAndSwap64(root.offset,
                                                   expected_raw,
                                                   desired_raw);
        clock_.advance(lat_.nvm_write_ns);
        return Status::Ok;
    }
    return guarded(backend, [&] {
        return verbs_.compareAndSwap(root, expected_raw, desired_raw,
                                     old_raw);
    });
}

Status
FrontendSession::readAux(DsId ds, NodeId backend, uint32_t idx, uint64_t *v)
{
    const RemotePtr p = namingField(ds, backend,
                                    naming_field::kAux0 + idx * 8);
    if (overlayLookup(p, v, sizeof(*v))) {
        clock_.advance(lat_.dram_access_ns);
        return Status::Ok;
    }
    if (cfg_.symmetric)
        return symmetricRead(p, v, sizeof(*v));
    return guarded(backend, [&] { return verbs_.read64(p, v); });
}

Status
FrontendSession::writeAux(DsId ds, NodeId backend, uint32_t idx, uint64_t v)
{
    const RemotePtr p = namingField(ds, backend,
                                    naming_field::kAux0 + idx * 8);
    return logWrite(ds, p, &v, sizeof(v));
}

Status
FrontendSession::writeAuxRange(DsId ds, NodeId backend, uint32_t first,
                               const uint64_t *vals, uint32_t count)
{
    const RemotePtr p = namingField(ds, backend,
                                    naming_field::kAux0 + first * 8);
    return logWrite(ds, p, vals, count * 8);
}

// ---------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------

void
FrontendSession::setReplayer(DsId ds, NodeId backend, Replayer fn)
{
    replayers_[{backend, ds}] = std::move(fn);
}

void
FrontendSession::setFailoverHook(DsId ds, NodeId backend,
                                 std::function<Status()> fn)
{
    failover_hooks_[{backend, ds}] = std::move(fn);
}

void
FrontendSession::simulateCrash()
{
    flush_hooks_.clear();
    post_flush_hooks_.clear();
    failover_hooks_.clear();
    overlay_.clear();
    pinned_.clear();
    tracked_reads_.clear();
    tracking_ = false;
    held_locks_.clear();
    writer_gen_.clear();
    gc_epoch_seen_.clear();
    // Pre-crash seqlock observations are volatile state: a recovered
    // front-end that trusted them would skip the cache-invalidation path
    // in readerLock on the first post-recovery read.
    sn_seen_.clear();
    local_retired_.clear();
    replayers_.clear();
    ops_in_batch_ = 0;
    in_op_ = false;
    cache_->clear();
    prefetch_.clear();   // learned runs are volatile front-end state
    verbs_.dropPosted(); // pending WQE chains die with the process
    pending_reads_.clear(); // parked reads die with their frames
    pipeline_posted_ops_ = false;
    pipeline_commit_deferred_ = false;
    pipe_gates_.clear();
    pipe_dirty_.clear();
    pipe_write_seq_ = 0;
    for (auto &[id, c] : backends_) {
        c.groups.clear();
        c.retired.clear();
        c.alloc->loseVolatileState();
    }
}

Status
FrontendSession::recover()
{
    // Recovery replay is not on any client's critical path: its verbs
    // run Background so the NIC's QoS arbiter can keep it from crowding
    // live sessions (no-op under the legacy scalar model).
    Verbs::ClassScope bg(verbs_, VerbClass::Background);
    for (auto &[id, c] : backends_) {
        // Fetch the authoritative log positions.
        clock_.advance(lat_.rdma_read_rtt_ns +
                       lat_.wireBytes(sizeof(LogControl)));
        // Case 2.a/3.a: a fully persisted tail transaction rolls forward.
        c.node->recoverTailTx(c.slot);
        // Release any writer lock our previous incarnation held.
        c.node->releaseStaleLocks(c.slot);

        const LogControl ctl = c.node->readControl(c.slot);
        c.lpn = ctl.lpn;
        c.opn = ctl.opn;
        c.memlog_head = ctl.memlog_head;
        c.oplog_head = ctl.oplog_head;

        // Case 2.b/2.c: re-execute operations whose memory logs never
        // made it into a replayed transaction.
        const auto ops = c.node->uncoveredOps(c.slot);
        for (const ParsedOpLog &op : ops) {
            clock_.advance(lat_.rdma_read_rtt_ns +
                           lat_.wireBytes(op.wire_len));
            auto rit = replayers_.find(
                std::make_pair(id, static_cast<DsId>(op.ds_id)));
            if (rit == replayers_.end())
                continue; // structure not re-opened; skip
            const Status st = rit->second(op);
            if (!ok(st) && st != Status::Exists)
                return st;
        }
    }
    return flushAll();
}

Status
FrontendSession::failover(NodeId failed, BackendNode *replacement)
{
    auto it = backends_.find(failed);
    if (it == backends_.end())
        return Status::InvalidArgument;
    assert(replacement->id() == failed &&
           "a promoted back-end keeps the node id so RemotePtrs stay valid");
    BackendCtx &c = it->second;
    c.node = replacement;
    c.groups.clear();
    c.retired.clear();
    verbs_.detach(failed);
    verbs_.attach(failed, replacement->rdmaTarget());
    c.rpc = std::make_unique<RfpRpc>(&verbs_, replacement, c.slot);
    c.alloc->loseVolatileState();
    cache_->clear(); // Section 4.3: aborts clear the cache
    prefetch_.clear(); // predictions refer to the failed node's layout
    overlay_.clear();
    pinned_.clear();

    uint32_t slot = 0;
    const Status st =
        replacement->registerFrontend(cfg_.session_id, &slot);
    if (!ok(st))
        return st;
    c.slot = slot;
    // Live data structure handles reset their volatile shadows to the
    // recovered NVM image before replay re-executes uncovered ops.
    for (auto &[key, hook] : failover_hooks_) {
        if (key.first == failed) {
            const Status hst = hook();
            if (!ok(hst))
                return hst;
        }
    }
    return recover();
}

Status
FrontendSession::handleBackendFailure(NodeId id)
{
    if (resolver_ == nullptr)
        return Status::BackendCrashed;
    in_failover_ = true;
    // Writer locks held on the failed incarnation died with it: the
    // replacement releases them from the lock-ahead records during
    // recovery, and op-log replay re-executes the operations that held
    // them — so forget them here rather than re-releasing stale state.
    for (auto it = held_locks_.begin(); it != held_locks_.end();) {
        if (it->first.first == id)
            it = held_locks_.erase(it);
        else
            ++it;
    }
    Status result = Status::Unavailable;
    PromotionCounters &pc = promo_[id];
    uint64_t observed = 0;
    if (const BackendCtx *c = ctx(id); c != nullptr)
        observed = c->epoch;
    // Race outcomes are per failover *episode*: a promotion lost (or a
    // stale-epoch fence) reported by several polls of the same episode
    // counts once.
    bool lost_counted = false;
    bool stale_counted = false;
    for (uint32_t i = 0; i < fo_cfg_.max_attempts; ++i) {
        const ResolveOutcome out =
            resolver_(ResolveRequest{id, clock_.now(), cfg_.session_id,
                                     observed});
        if (out.stale_fenced && !stale_counted) {
            ++pc.stale_epoch_fenced;
            stale_counted = true;
        }
        if (out.lost_promotion && !lost_counted) {
            ++pc.promotions_lost;
            lost_counted = true;
        }
        if (out.won_promotion)
            ++pc.promotions_won;
        observed = out.epoch; // adopt the slot's current epoch
        if (out.node != nullptr && !out.node->failure().crashed()) {
            const Status st = failover(id, out.node);
            if (ok(st)) {
                if (BackendCtx *c = ctx(id); c != nullptr)
                    c->epoch = out.epoch;
                ++failovers_completed_;
                result = Status::Ok;
                break;
            }
            // The replacement died under recovery; poll again.
        }
        // The cluster is still waiting out the failed node's lease (the
        // mirror must not be promoted while the old incarnation might
        // still serve writes) — burn a quantum of virtual time.
        clock_.advance(fo_cfg_.wait_quantum_ns);
        failover_wait_ns_ += fo_cfg_.wait_quantum_ns;
    }
    in_failover_ = false;
    return result;
}

Status
FrontendSession::tryHeal(NodeId id)
{
    BackendCtx *c = ctx(id);
    if (c == nullptr)
        return Status::InvalidArgument;
    if (resolver_ == nullptr || in_failover_)
        return c->node->failure().crashed() ? Status::Unavailable
                                            : Status::Ok;
    const ResolveOutcome out = resolver_(
        ResolveRequest{id, clock_.now(), cfg_.session_id, c->epoch});
    PromotionCounters &pc = promo_[id];
    if (out.stale_fenced)
        ++pc.stale_epoch_fenced;
    if (out.lost_promotion)
        ++pc.promotions_lost;
    if (out.won_promotion)
        ++pc.promotions_won;
    if (out.node == nullptr || out.node->failure().crashed())
        return Status::Unavailable;
    if (out.node == c->node && out.epoch == c->epoch &&
        !c->node->failure().crashed()) {
        return Status::Ok; // already attached to the serving incarnation
    }
    in_failover_ = true;
    // Forget writer locks held on the superseded incarnation, exactly as
    // the blocking heal does: the replacement releases them from the
    // lock-ahead records and replay re-executes their owners.
    for (auto it = held_locks_.begin(); it != held_locks_.end();) {
        if (it->first.first == id)
            it = held_locks_.erase(it);
        else
            ++it;
    }
    const Status st = failover(id, out.node);
    in_failover_ = false;
    if (!ok(st))
        return Status::Unavailable;
    c->epoch = out.epoch;
    ++failovers_completed_;
    return Status::Ok;
}

void
FrontendSession::noteBackendEpoch(NodeId id, uint64_t epoch)
{
    if (BackendCtx *c = ctx(id); c != nullptr)
        c->epoch = epoch;
}

uint64_t
FrontendSession::backendEpoch(NodeId id) const
{
    const BackendCtx *c = ctx(id);
    return c == nullptr ? 0 : c->epoch;
}

SessionStats
FrontendSession::stats() const
{
    SessionStats s;
    s.ops_started = ops_started_;
    s.tx_flushes = tx_flushes_;
    s.verbs = verbs_.counters();
    s.retry = verbs_.retryStats();
    s.prefetch.batches = prefetch_batches_;
    s.prefetch.issued = prefetch_issued_;
    s.prefetch.hits = cache_->prefetchHits();
    s.prefetch.wasted = cache_->prefetchWasted();
    s.logfmt = logfmt_;
    s.pipeline.depth = cfg_.pipeline_depth;
    s.pipeline.ops = pipe_ops_;
    s.pipeline.runs = pipe_runs_;
    s.pipeline.rounds = pipe_rounds_;
    s.pipeline.batched_reads = pipe_batched_reads_;
    s.pipeline.solo_rounds = pipe_solo_rounds_;
    s.pipeline.max_in_flight = pipe_max_in_flight_;
    s.pipeline.deferred_commits = pipe_deferred_commits_;
    s.pipeline.batched_appends = pipe_batched_appends_;
    s.pipeline.coalesced_fences = pipe_coalesced_fences_;
    s.pipeline.dep_stalls = pipe_dep_stalls_;
    s.retry.failovers += failovers_completed_;
    s.retry.failover_wait_ns += failover_wait_ns_;
    for (const auto &[id, pc] : promo_) {
        s.retry.promotions_won += pc.promotions_won;
        s.retry.promotions_lost += pc.promotions_lost;
        s.retry.stale_epoch_fenced += pc.stale_epoch_fenced;
    }
    for (const auto &[id, c] : backends_) {
        if (c.rpc != nullptr) {
            s.retry.rpc_resends += c.rpc->resends();
            s.retry.rpc_dup_responses += c.rpc->dupResponsesDropped();
        }
    }
    return s;
}

void
FrontendSession::resetStats()
{
    ops_started_ = 0;
    tx_flushes_ = 0;
    logfmt_ = LogFormatStats{};
    failovers_completed_ = 0;
    failover_wait_ns_ = 0;
    promo_.clear();
    verbs_.resetStats();
    cache_->resetStats();
    prefetch_batches_ = 0;
    prefetch_issued_ = 0;
    pipe_ops_ = 0;
    pipe_runs_ = 0;
    pipe_rounds_ = 0;
    pipe_batched_reads_ = 0;
    pipe_solo_rounds_ = 0;
    pipe_max_in_flight_ = 0;
    pipe_deferred_commits_ = 0;
    pipe_batched_appends_ = 0;
    pipe_coalesced_fences_ = 0;
    pipe_dep_stalls_ = 0;
    hist_commit_ = Histogram{};
    hist_fanout_ = Histogram{};
    hist_read_remote_ = Histogram{};
    hist_read_local_ = Histogram{};
}

} // namespace asymnvm
