#ifndef ASYMNVM_FRONTEND_SESSION_H_
#define ASYMNVM_FRONTEND_SESSION_H_

/**
 * @file
 * The front-end session: AsymNVM's client-side runtime.
 *
 * A FrontendSession implements the underlying API of Table 1 on top of the
 * verbs layer — rnvm_read / rnvm_write, the transactional interface
 * (rnvm_mem_log / rnvm_op_log / rnvm_tx_write), the two-tier allocator
 * (rnvm_malloc / rnvm_free), and the concurrency primitives (writer lock,
 * write-preferred reader lock). Data structures (src/ds) are written
 * purely against this API, exactly as Figure 2's skiplist example uses it.
 *
 * The session also embodies the paper's three optimizations, selectable
 * through SessionConfig so that benchmarks can run the ablation rows of
 * Table 3:
 *
 *  - R  (log reproducing): a write returns once its *operation log* is
 *    persisted with a single RDMA_Write; memory logs are posted
 *    asynchronously and replayed by the back-end (Sections 4.2/4.3).
 *  - C  (caching): remote objects are cached in front-end DRAM with the
 *    hybrid LRU+RR policy and adaptive level admission (Section 4.4).
 *  - B  (batching): operations group-commit — op logs are buffered and
 *    the batch's memory logs coalesce into one rnvm_tx_write whose
 *    completion is the batch's persistence point (Section 4.3).
 *
 * The *symmetric* baseline of Section 9.2 is a session mode as well: the
 * data structure code is unchanged, but reads/writes are priced as local
 * NVM accesses and logs ship to a remote mirror asynchronously.
 */

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "backend/backend_node.h"
#include "backend/log_format.h"
#include "common/types.h"
#include "frontend/allocator.h"
#include "frontend/cache.h"
#include "frontend/pipeline.h"
#include "frontend/prefetch.h"
#include "rdma/rpc.h"
#include "rdma/verbs.h"
#include "sim/clock.h"
#include "sim/latency.h"

namespace asymnvm {

/** Per-session tunables; presets mirror the system rows of Table 3. */
struct SessionConfig
{
    uint64_t session_id = 1;    //!< identity for log-slot reattachment
    /**
     * Queue-pair identity at the shared back-end NIC's per-QP contention
     * model; 0 (default) adopts session_id, so distinct sessions land on
     * distinct QPs without extra configuration. Only meaningful when the
     * back-end enables NicQosConfig::cross_session_merge.
     */
    uint64_t qp_id = 0;
    bool use_oplog = true;      //!< decoupled op-log persistency (R)
    bool use_txlog = true;      //!< memory logs via transactions
    bool use_cache = true;      //!< front-end DRAM cache (C)
    uint32_t batch_size = 1024; //!< ops per group commit; 1 = per-op (B)
    /**
     * Replace memory-log values that duplicate the current operation
     * log's payload with a reference to it (Figure 3's one-byte Flag),
     * shrinking transactions on the wire; the back-end replayer fetches
     * the bytes from the op-log ring.
     */
    bool use_opref = true;
    /** Coalesce memory logs to the same address within a batch. */
    bool coalesce_memlogs = true;
    uint64_t cache_bytes = 4ull << 20;
    CachePolicy cache_policy = CachePolicy::Hybrid;
    uint32_t cache_sample_k = 32;
    uint64_t memlog_buffer_cap = 512ull << 10;
    bool symmetric = false;       //!< symmetric-architecture baseline
    bool symmetric_batch = false; //!< Symmetric-B (batched log shipping)
    /**
     * Multi-back-end group commits overlap their per-back-end round
     * trips: the flush driver posts every back-end's WQE chain, rings
     * all doorbells, and awaits the completions together (one fence at
     * the *maximum* completion time instead of the sum). Disable to get
     * the serial baseline the Figure 10 fan-out comparison runs against.
     */
    bool parallel_fanout = true;
    /**
     * Read-side doorbell batching: on a traversal miss, gather the
     * demanded node plus speculative neighbors (ReadHint::neighbors and
     * learned pointer-chain runs) in ONE doorbell-batched read chain and
     * park the extras in the cache as speculative entries. Disable for
     * the serial-read ablation baseline (every hop pays its own RTT).
     */
    bool read_prefetch = true;
    uint32_t prefetch_degree = 4; //!< max speculative WQEs per gather
    /**
     * Wire encoding of this session's memory-log transactions and
     * op-log records (see log_format.h): classic Figure-3 layout
     * (default, bit-identical to the original), header-dancing
     * (rotating in-line commit mark, 64 B aligned records, one
     * store + persist per commit), or zero-based (validity as the
     * zero/non-zero state of pre-zeroed ring bytes). Every record is
     * self-identifying, so the back-end replays/recovers any format
     * and mirrors replicate raw byte ranges format-agnostically.
     */
    LogFormatKind log_format = LogFormatKind::Classic;
    /**
     * Operations kept in flight by the pipelined executor
     * (executePipelined): while one coroutine op waits on its remote
     * read, up to depth-1 others issue theirs, and each reactor round
     * serves all demanded reads as one doorbell-batched gather. Depth 1
     * (default) runs every op serially through the unchanged read path —
     * bit-identical wire traffic to a non-pipelined session.
     */
    uint32_t pipeline_depth = 1;
    /**
     * Allocator reclaim hysteresis: FreeBlocks returns empty slabs to
     * the back-end only beyond the peak demand of the last this-many
     * alloc/free cycles (see FrontendAllocator::maybeReclaim). Raise it
     * when a workload's alloc/free oscillation period exceeds two cycles
     * and the FreeBlocks/AllocBlocks RPC ping-pong reappears.
     */
    uint32_t alloc_hysteresis_cycles = 2;
    uint64_t rng_seed = 99;

    /** AsymNVM-Naive: direct remote reads/writes, no logs/cache/batch. */
    static SessionConfig naive(uint64_t id);
    /** AsymNVM-R: + operation-log reproducing. */
    static SessionConfig r(uint64_t id);
    /** AsymNVM-RC: + front-end caching. */
    static SessionConfig rc(uint64_t id, uint64_t cache_bytes);
    /** AsymNVM-RCB: + batching. */
    static SessionConfig rcb(uint64_t id, uint64_t cache_bytes,
                             uint32_t batch);
    /** Symmetric upper bound (local NVM + async remote logs). */
    static SessionConfig symmetricBase(uint64_t id, bool batched);
};

/** Hints a data structure passes with each read (Section 8). */
struct ReadHint
{
    DsId ds = 0;
    bool cacheable = false;
    uint32_t level = 0;                 //!< tree level, root = 0
    LevelAdmission *admission = nullptr; //!< adaptive admission, optional
    bool pin = false; //!< batch-local pin (vector operations, Alg. 3)
    /**
     * Structural neighbors worth gathering with this read (sibling
     * B+-tree children around the taken route, lower skiplist tower
     * levels). The span must stay alive for the duration of the read
     * call. Empty when the structure has nothing to speculate on.
     */
    std::span<const PrefetchCandidate> neighbors;
    /**
     * Stable id of the pointer chain this read walks (hash bucket
     * address, scan anchor) for learned-run prefetch; 0 = not part of a
     * chain. Only read operations should label their traversals — write
     * paths leave it 0 so speculation never perturbs write-side costs.
     */
    uint64_t stream = 0;
};

/** Snapshot of the hot naming-entry fields read in one verb. */
struct DsMeta
{
    uint64_t root_raw;
    uint64_t version;
    uint64_t gc_epoch;
};

/**
 * Transparent-failover knobs. When a verb-level failure outlives the
 * retry policy (or the back-end fail-stops), the session polls its
 * resolver for a serving replacement every @p wait_quantum_ns of virtual
 * time — the cluster needs the failed node's lease to expire before it
 * promotes a mirror — up to @p max_attempts polls.
 */
struct FailoverConfig
{
    uint32_t max_attempts = 16;
    uint64_t wait_quantum_ns = 2000000; //!< ~ lease-expiry granularity
};

/**
 * One resolver poll (see FrontendSession::BackendResolver): the session
 * identifies itself and presents the failover epoch it last observed for
 * the slot, so the cluster can fence zombies and arbitrate the promotion
 * CAS between concurrent sessions.
 */
struct ResolveRequest
{
    NodeId node = 0;
    uint64_t now_ns = 0;
    uint64_t session_id = 0;
    uint64_t observed_epoch = 0; //!< 0 = never resolved (no fence check)
};

/**
 * Resolver verdict. @p node is the serving back-end (nullptr while the
 * slot cannot be healed yet — lease wait, promotion in flight — or at
 * all); @p epoch is the slot's current failover epoch, which the session
 * adopts. The flags report how this poll participated in a promotion
 * race: it completed a promotion it had claimed (won), it observed or
 * lost the CAS to a concurrent session (lost), or it presented a stale
 * epoch and was fenced (its verbs target a superseded incarnation and
 * the failover it is running IS the forced re-resolution).
 */
struct ResolveOutcome
{
    BackendNode *node = nullptr;
    uint64_t epoch = 0;
    bool won_promotion = false;
    bool lost_promotion = false;
    bool stale_fenced = false;
};

/** Per-backend promotion-race outcome counters kept by the session. */
struct PromotionCounters
{
    uint64_t promotions_won = 0;
    uint64_t promotions_lost = 0;
    uint64_t stale_epoch_fenced = 0;
};

/**
 * Log-encoding accounting: wire vs payload bytes the session persisted
 * through its transaction and op-log appends. wire − payload is the
 * per-format framing overhead the log_format ablation compares.
 */
struct LogFormatStats
{
    uint64_t tx_records = 0;
    uint64_t tx_wire_bytes = 0;
    uint64_t tx_payload_bytes = 0; //!< entry value bytes inside txs
    uint64_t op_records = 0;
    uint64_t op_wire_bytes = 0;
    uint64_t op_payload_bytes = 0; //!< op-log value bytes
};

/** Aggregated per-session observability snapshot. */
struct SessionStats
{
    uint64_t ops_started = 0;
    uint64_t tx_flushes = 0;
    VerbCounters verbs;    //!< traffic by verb type (reads/writes/atomics)
    RetryStats retry;      //!< transient-fault absorption + failover work
    PrefetchStats prefetch; //!< read-gather speculation outcome
    LogFormatStats logfmt;  //!< persisted log bytes by record class
    PipelineStats pipeline; //!< op-pipelining overlap/stall profile
};

/** The client-side AsymNVM runtime for one front-end thread. */
class FrontendSession
{
  public:
    FrontendSession(const SessionConfig &cfg,
                    const LatencyModel &lat = LatencyModel::defaults());
    ~FrontendSession();

    FrontendSession(const FrontendSession &) = delete;
    FrontendSession &operator=(const FrontendSession &) = delete;

    /** Connect to a back-end: register a log slot and attach the NIC. */
    Status connect(BackendNode *backend);

    /** Clean disconnect (releases the log slot). */
    void disconnect(BackendNode *backend);

    SimClock &clock() { return clock_; }
    Verbs &verbs() { return verbs_; }
    const SessionConfig &config() const { return cfg_; }
    const LatencyModel &latency() const { return lat_; }
    PageCache &cache() { return *cache_; }

    // ------------------------------------------------------------------
    // Table 1: basic / transactional API
    // ------------------------------------------------------------------

    /**
     * rnvm_read: serve from the pending-write overlay, the batch-local
     * pin set, or the DRAM cache; otherwise read remote NVM (and admit
     * to the cache per the hint).
     */
    Status read(RemotePtr addr, void *dst, uint32_t len,
                const ReadHint &hint = {});

    // ------------------------------------------------------------------
    // Pipelined operations (coroutine reactor)
    // ------------------------------------------------------------------

    /**
     * Awaitable remote read for OpTask coroutine bodies. The local
     * phases (overlay, pins, symmetric, cache) complete inline; a remote
     * miss inside an active pipeline parks the read with the reactor and
     * suspends until the round's shared gather delivers it. Outside a
     * pipeline (or at depth 1) it degrades to the serial read() — same
     * verbs, same clock charges, bit-identical wire traffic.
     *
     * The hint's neighbors span must stay alive across the suspension;
     * coroutine-frame arrays satisfy this naturally.
     */
    struct ReadAwaitable
    {
        FrontendSession *s = nullptr;
        RemotePtr addr;
        void *dst = nullptr;
        uint32_t len = 0;
        ReadHint hint;
        Status result = Status::Ok;
        bool cacheable = false; //!< computed by the local phase
        bool admitted = false;  //!< admission decision, made pre-suspend
        /** Pipeline write sequence observed when this read was served
         *  (read-set validation: a later same-address window write makes
         *  the captured bytes stale). */
        uint64_t served_seq = 0;

        bool await_ready();
        void await_suspend(std::coroutine_handle<> h);
        /**
         * Read-your-writes at resume: a sibling write op resumed earlier
         * in the SAME service round may have landed at this address
         * after the round's gather copied its bytes — the refresh
         * replays the local tiers (the overlay now holds the fresh
         * image) before the coroutine consumes them. No-op outside a
         * pipeline and for clean addresses.
         */
        Status await_resume()
        {
            if (s != nullptr && s->pipeline_active_)
                s->pipelineRefreshIfStale(*this);
            return result;
        }
    };

    ReadAwaitable asyncRead(RemotePtr addr, void *dst, uint32_t len,
                            const ReadHint &hint = {})
    {
        return ReadAwaitable{this, addr, dst, len, hint};
    }

    /**
     * Run @p ops with up to pipeline_depth of them in flight, overlapping
     * their remote-read round trips (one doorbell-batched gather per
     * reactor round) and coalescing their commits into one group-commit
     * fence at window drain. Results land in @p results (same indexing);
     * completion order is data-dependent, results order is not. At depth
     * 1 every op runs to completion serially — the ablation baseline.
     */
    void executePipelined(std::span<OpTask> ops,
                          std::span<Status> results);

    /** True while the reactor owns this session's scheduling. */
    bool pipelineActive() const { return pipeline_active_; }

    /**
     * Cooperative yield for write coroutines blocked on a window
     * dependency (same-key sibling still in flight): completes inline
     * outside a pipeline, suspends back to the reactor inside one. The
     * reactor re-resumes every windowed op each service round, so the
     * waiter re-polls its WindowGate after the owner's local effects
     * land.
     */
    struct YieldAwaitable
    {
        FrontendSession *s = nullptr;
        bool await_ready() const { return !s->pipeline_active_; }
        void await_suspend(std::coroutine_handle<>) {}
        void await_resume() const {}
    };

    YieldAwaitable pipelineYield() { return YieldAwaitable{this}; }

    /**
     * True while a write coroutine in the current window holds the
     * (ds, key) gate. Read coroutines poll this at entry — `while
     * (held) co_await pipelineYield()` — so a read admitted after a
     * same-key write waits out that write's local effects
     * (read-your-writes) without acquiring anything itself: readers
     * never block readers, and outside a pipeline the check is
     * constant-false (no window, no siblings).
     */
    bool pipelineGateHeld(uint64_t ds, uint64_t key) const
    {
        return pipeline_active_ &&
               pipe_gates_.find({ds, key}) != pipe_gates_.end();
    }

    /**
     * Same-key/same-structure dependency ordering inside a pipelined
     * window (write pipelining, DESIGN.md §14). A write coroutine
     * constructs a gate over its conflict key — (ds, key) for keyed
     * structures, (ds, 0) for whole-structure ordering (stack/queue,
     * MV writers) — and spins `while (!gate.tryAcquire())
     * co_await s->pipelineYield();` before its first side effect. Later
     * ops on the same key suspend until the earlier op's local effects
     * (overlay writes, shadow updates) land, which keeps every
     * same-key sequence in admission order — exactly the serial order —
     * while different-key ops interleave freely. Outside a pipeline the
     * gate acquires immediately and holds nothing (depth-1 ops never
     * have siblings). Released on destruction (coroutine locals are
     * destroyed at co_return, before the op leaves the window).
     */
    class WindowGate
    {
      public:
        WindowGate(FrontendSession *s, DsId ds, Key key)
            : s_(s), key_{ds, key}
        {
        }
        ~WindowGate() { release(); }
        WindowGate(const WindowGate &) = delete;
        WindowGate &operator=(const WindowGate &) = delete;

        /** True when this op owns the key (idempotent once acquired). */
        bool tryAcquire();
        void release();

      private:
        FrontendSession *s_;
        std::pair<uint64_t, uint64_t> key_;
        uint64_t ticket_ = 0; //!< 0 = not holding a pipeline slot
        bool stalled_ = false; //!< one dep_stall per wait episode
    };

    /**
     * Read-set validation for pipelined write descents: a stamp pairs a
     * remote address with the pipeline write sequence observed when the
     * bytes were read. The descent re-checks its stamps right before its
     * write phase; a sibling op's window write to any stamped address in
     * between makes the descent stale and it restarts (overlay/cache are
     * hot, so the re-descent is cheap and charge-free where it matters).
     */
    struct ReadStamp
    {
        uint64_t addr_raw = 0;
        uint64_t seq = 0;
    };

    /** Current pipeline write sequence (0 outside a window). */
    uint64_t pipelineWriteSeq() const { return pipe_write_seq_; }

    /** True when no stamped address was overwritten after its stamp. */
    bool pipelineReadSetClean(std::span<const ReadStamp> stamps) const
    {
        for (const ReadStamp &rs : stamps) {
            auto it = pipe_dirty_.find(rs.addr_raw);
            if (it != pipe_dirty_.end() && it->second > rs.seq)
                return false;
        }
        return true;
    }

    /** Account a validation-forced descent restart (a dependency stall). */
    void notePipelineRestart() { ++pipe_dep_stalls_; }

    /**
     * Snapshot of the current operation's op-log record position, taken
     * right after opBegin. A pipelined descent restores it immediately
     * before its memory-log writes so op-ref encoding (logWriteFromOp)
     * references THIS op's record even when sibling ops' opBegins
     * interleaved during the suspendable read phase.
     */
    struct OpRef
    {
        uint64_t pos = 0;
        uint32_t len = 0;
    };

    OpRef currentOpRef(NodeId backend) const;
    void restoreOpRef(NodeId backend, const OpRef &ref);

    /**
     * rnvm_mem_log/rnvm_write: record one {address, value} modification
     * of data structure @p ds. Naive mode issues a synchronous
     * RDMA_Write; transactional modes buffer a memory log (with
     * coalescing) and update overlay + cache.
     */
    Status logWrite(DsId ds, RemotePtr addr, const void *value,
                    uint32_t len);

    /**
     * Like logWrite, but the value equals a slice of the payload of
     * this operation's op log (offset @p val_off): when op-ref logging
     * is enabled the memory log carries a reference instead of bytes.
     */
    Status logWriteFromOp(DsId ds, RemotePtr addr, const void *value,
                          uint32_t len, uint32_t val_off = 0);

    /**
     * rnvm_op_log + operation bracketing: call at the start of every
     * data structure write operation. Persists the operation log (the
     * write's durability point in R mode) and assigns its OPN.
     */
    Status opBegin(DsId ds, NodeId backend, OpType op, Key key,
                   const void *value, uint32_t val_len);

    /**
     * End of a data structure write operation: advances the batch
     * counter and group-commits at the batch boundary.
     */
    Status opEnd();

    /** rnvm_tx_write on every buffered group: the persistence fence. */
    Status flushAll();

    /**
     * Persistent fence (Section 4.1): after it returns, every preceding
     * write is durable in back-end NVM, and reads return persisted data.
     */
    Status persistentFence() { return flushAll(); }

    /** Ops currently buffered (not yet group-committed). */
    uint32_t opsInBatch() const { return ops_in_batch_; }

    /**
     * Pre-flush hook: runs at the start of every group commit, before
     * memory logs serialize. Stack/queue use this to materialize their
     * surviving (un-annulled) pending operations (Section 8.1).
     */
    void setFlushHook(DsId ds, NodeId backend, std::function<void()> fn);

    /**
     * Post-flush hook: runs after the batch is durable and replayed,
     * before locks release. Multi-version structures publish their new
     * root here with an atomic root swap (Section 6.2).
     */
    void setPostFlushHook(DsId ds, NodeId backend,
                          std::function<void()> fn);

    /**
     * Override the covered-OPN recorded in @p ds's next transaction.
     * Multi-version structures keep coverage at the OPN of their last
     * *published* (root-swapped) batch, so a crash between the flush and
     * the root swap still re-executes the unpublished operations.
     */
    void setGroupCoverage(DsId ds, NodeId backend, uint64_t covered_opn);

    /** Current OPN shadow for @p backend (next op log number). */
    uint64_t currentOpn(NodeId backend) const;

    // ------------------------------------------------------------------
    // Table 1: management API (two-tier allocator)
    // ------------------------------------------------------------------

    /** rnvm_malloc. */
    Status alloc(NodeId backend, uint64_t size, RemotePtr *out);

    /** rnvm_free. */
    Status free(RemotePtr p, uint64_t size);

    /** Defer reclamation of a multi-version node (lazy GC, Section 6.2). */
    void retire(DsId ds, RemotePtr p, uint64_t size);

    // ------------------------------------------------------------------
    // Table 1: concurrency API
    // ------------------------------------------------------------------

    /**
     * writer_lock (Algorithm 1): RDMA_CAS spin plus the lock-ahead
     * record. When batching, the lock is held until the group commit
     * releases it. Re-acquiring a lock already held is a no-op.
     */
    Status writerLock(DsId ds, NodeId backend);

    /** writer_unlock: flushes this structure's logs first. */
    Status writerUnlock(DsId ds, NodeId backend);

    bool holdsWriterLock(DsId ds, NodeId backend) const;

    /**
     * reader_lock (Algorithm 2): spin until the SN is even; returns it.
     * Begins tracking read addresses for cache invalidation on conflict.
     */
    Status readerLock(DsId ds, NodeId backend, uint64_t *sn);

    /**
     * reader_unlock: true when the SN is unchanged (reads consistent).
     * On failure the tracked cache entries are invalidated so the retry
     * refetches fresh data.
     */
    bool readerValidate(DsId ds, NodeId backend, uint64_t sn);

    // ------------------------------------------------------------------
    // Naming space
    // ------------------------------------------------------------------

    Status createDs(NodeId backend, std::string_view name, DsType type,
                    DsId *id);
    Status openDs(NodeId backend, std::string_view name, DsId *id,
                  DsType *type);

    /** One-verb read of {root, version, gc_epoch}; invalidates the DS's
     *  cache entries when the GC epoch advanced (reused NVM). */
    Status readDsMeta(DsId ds, NodeId backend, DsMeta *out);

    /** Atomic root swap (multi-version commit). */
    Status casRoot(DsId ds, NodeId backend, uint64_t expected_raw,
                   uint64_t desired_raw, uint64_t *old_raw);

    /** Read/write naming-entry auxiliary words (through the log path). */
    Status readAux(DsId ds, NodeId backend, uint32_t idx, uint64_t *v);
    Status writeAux(DsId ds, NodeId backend, uint32_t idx, uint64_t v);

    /**
     * Write @p count consecutive auxiliary words as ONE memory log /
     * RDMA write (stack/queue update head+tail+count together). A
     * structure must not mix range and single-word writes to the same
     * aux words within a batch (overlay granularity is per write).
     */
    Status writeAuxRange(DsId ds, NodeId backend, uint32_t first,
                         const uint64_t *vals, uint32_t count);

    /** Absolute NVM address of a naming-entry field. */
    RemotePtr namingField(DsId ds, NodeId backend, uint64_t field_off);

    // ------------------------------------------------------------------
    // Recovery (Section 7.2)
    // ------------------------------------------------------------------

    /** Re-execution callback a data structure registers for its ops. */
    using Replayer = std::function<Status(const ParsedOpLog &)>;
    void setReplayer(DsId ds, NodeId backend, Replayer fn);

    /**
     * Drop all volatile state, as a front-end crash would (Cases 1/2).
     * The session stays connected (the back-end keeps its slot).
     */
    void simulateCrash();

    /**
     * Recover after simulateCrash() or a back-end restart: re-fetch log
     * positions, have the back-end validate the last transaction,
     * re-execute uncovered operation logs through the registered
     * replayers, and release stale writer locks.
     */
    Status recover();

    /** Back-end failover: clear caches and retarget to @p replacement. */
    Status failover(NodeId failed, BackendNode *replacement);

    /**
     * Hook a structure registers to survive *transparent* failover with a
     * live handle: runs after the session retargets to the replacement
     * back-end, before op-log replay. The structure must reset its
     * volatile shadows to the recovered NVM image (reload aux words, drop
     * pending annulment queues) — exactly what re-open()ing does in the
     * manual recovery flow — or replay would double-apply into shadows
     * that already reflect the uncovered operations.
     */
    void setFailoverHook(DsId ds, NodeId backend,
                         std::function<Status()> fn);

    // ------------------------------------------------------------------
    // Transparent failover (Section 7.2, Cases 3/4, without app help)
    // ------------------------------------------------------------------

    /**
     * Resolves a node id to its current serving BackendNode — the
     * restarted node, or the mirror promoted under the same id — or a
     * null outcome while the cluster still waits out the failed node's
     * lease or another session's promotion. The request carries this
     * session's identity and last-observed failover epoch (promotion CAS
     * + zombie fencing); the outcome carries the slot's current epoch and
     * the race verdict. Clusters install this via Cluster::makeSession
     * when ClusterConfig::transparent_failover is set.
     */
    using BackendResolver =
        std::function<ResolveOutcome(const ResolveRequest &)>;

    /**
     * Arm transparent failover: when a back-end fail-stops under a verb
     * (or a transient storm outlives the verb retry policy), the session
     * heals itself — waits out the promotion, retargets to the resolved
     * replacement, replays its shadow state (recover()) — and, when the
     * failure hit at an operation boundary, transparently re-issues the
     * failed primitive. A failure in the middle of a write operation
     * still heals but surfaces the error: the interrupted operation is
     * already covered by op-log replay, so the caller retries it whole.
     */
    void setBackendResolver(BackendResolver fn)
    {
        resolver_ = std::move(fn);
    }

    void setFailoverConfig(const FailoverConfig &c) { fo_cfg_ = c; }
    const FailoverConfig &failoverConfig() const { return fo_cfg_; }

    /**
     * One non-blocking resolver poll for @p id: heal the back-end if a
     * serving replacement is available *right now*, otherwise return
     * Unavailable without burning wait quanta. Partitioned<DS> uses this
     * to probe degraded shards — each probe advances a pending promotion
     * by one poll (claim, then complete) without stalling the k-1 healthy
     * shards behind the full failover wait loop. Returns Ok when the
     * backend is healthy (healed or already serving).
     */
    Status tryHeal(NodeId id);

    /**
     * Adopt @p epoch as the last-observed failover epoch for @p id
     * (presented in future ResolveRequests). Cluster::makeSession seeds
     * this at connect time; failover updates it from resolver outcomes.
     */
    void noteBackendEpoch(NodeId id, uint64_t epoch);

    /** Last-observed failover epoch for @p id (0 = never resolved). */
    uint64_t backendEpoch(NodeId id) const;

    /** Per-backend promotion-race outcomes (won / lost / fenced). */
    const std::map<NodeId, PromotionCounters> &promotionCounters() const
    {
        return promo_;
    }

    // ------------------------------------------------------------------
    // Statistics
    // ------------------------------------------------------------------

    uint64_t opsStarted() const { return ops_started_; }
    uint64_t txFlushes() const { return tx_flushes_; }
    uint64_t failoversCompleted() const { return failovers_completed_; }

    /** Virtual-time latency of each group commit (flushAll / opEnd). */
    const Histogram &commitHistogram() const { return hist_commit_; }

    /** Latency of each multi-back-end fan-out flush (k > 1 targets). */
    const Histogram &fanoutHistogram() const { return hist_fanout_; }

    /** Latency of reads that issued remote verbs (cache/overlay misses). */
    const Histogram &readRemoteHistogram() const
    {
        return hist_read_remote_;
    }

    /** Latency of reads served locally (overlay, pins, DRAM cache). */
    const Histogram &readLocalHistogram() const { return hist_read_local_; }

    /** Merged observability: verbs traffic, retries, RPC dedup, failover. */
    SessionStats stats() const;

    /**
     * Number of (backend, ds) pairs with a remembered seqlock SN. Volatile
     * state: must drop to zero across simulateCrash(), or a recovered
     * front-end would trust pre-crash SN observations and skip cache
     * invalidation in readerLock.
     */
    size_t seqlockObservations() const { return sn_seen_.size(); }
    uint64_t busyNs() const { return clock_.now(); }
    void resetStats();

    /** Pinned (batch-local) reads are dropped at every group commit. */
    void dropPins() { pinned_.clear(); }

  private:
    struct BackendCtx
    {
        BackendNode *node = nullptr;
        uint32_t slot = 0;
        uint64_t epoch = 0; //!< last-observed failover epoch of the slot
        std::unique_ptr<RfpRpc> rpc;
        std::unique_ptr<FrontendAllocator> alloc;
        // Local shadows of the log positions (persisted in LogControl).
        uint64_t lpn = 0;
        uint64_t opn = 0;
        uint64_t memlog_head = 0;
        uint64_t oplog_head = 0;
        uint64_t last_oplog_pos = 0; //!< position of this op's log record
        uint32_t last_oplog_len = 0; //!< its payload length
        // Buffered memory logs per data structure (group-commit unit).
        // Entry values live in the group's bump arena so the logWrite hot
        // path never heap-allocates per modification.
        struct GroupEntry
        {
            RemotePtr addr;
            uint32_t arena_off = 0; //!< value bytes: group arena offset
            uint32_t len = 0;       //!< value length
            bool op_ref = false;    //!< value lives in the op-log ring
            uint64_t oplog_pos = 0; //!< monotonic ring position
            uint32_t val_off = 0;   //!< offset within the op's payload
        };
        struct Group
        {
            std::vector<GroupEntry> logs;
            std::vector<uint8_t> arena; //!< entry value bytes, appended
            std::unordered_map<uint64_t, size_t> index; //!< addr -> slot
            uint64_t bytes = 0;
            /** Coverage override (multi-version structures). */
            std::optional<uint64_t> covered_opn;
        };
        std::map<DsId, Group> groups;
        // Deferred MV retirements, shipped with the next group commit.
        std::vector<std::pair<uint64_t, uint64_t>> retired;
        DsId retired_ds = 0;
    };

    BackendCtx *ctx(NodeId id);
    const BackendCtx *ctx(NodeId id) const;
    Status rpcCall(BackendCtx &c, RpcOp op, std::span<const uint64_t> args,
                   std::span<const uint8_t> payload, uint64_t rets[4]);
    Status flushGroup(BackendCtx &c, DsId ds, bool sync_commit);

    /** Failure classes the session heals by failover (everything the
     *  verbs layer could not absorb with retries). */
    static bool needsFailover(Status st)
    {
        return st == Status::BackendCrashed || isTransient(st);
    }

    /**
     * Heal a failed back-end: poll the resolver (waiting out the lease /
     * promotion in virtual time), retarget to the replacement, and run
     * the recovery protocol against it. Held writer locks on the failed
     * node are forgotten first — the replacement releases them from the
     * lock-ahead records, and op-log replay re-executes their owners.
     */
    Status handleBackendFailure(NodeId id);

    /**
     * Run @p fn, and on an unhealed back-end failure heal and — at an
     * operation boundary, where the primitive is idempotent — re-issue
     * it. Inside a write operation the original error is surfaced after
     * healing (replay already covers the interrupted operation).
     */
    template <typename Fn>
    Status guarded(NodeId id, Fn &&fn)
    {
        Status st = fn();
        if (resolver_ == nullptr || in_failover_)
            return st;
        // Capture the op-boundary flag *before* healing: recovery replays
        // whole operations, which toggle in_op_ themselves and leave it
        // clear — the retry decision belongs to the failed call site.
        const bool was_in_op = in_op_;
        for (uint32_t round = 0; round < 4 && needsFailover(st); ++round) {
            if (!ok(handleBackendFailure(id)))
                return st;
            if (was_in_op)
                return st; // healed; caller must restart the operation
            st = fn();
        }
        return st;
    }

    Status flushAllInner();
    Status readInner(RemotePtr addr, void *dst, uint32_t len,
                     const ReadHint &hint);

    /**
     * Remote-miss service: fetch @p len bytes at @p addr, gathering
     * speculative neighbor reads in the same doorbell when the hint and
     * config allow it (speculative entries land in the cache). Falls
     * back to a plain RDMA_Read when there is nothing to speculate on or
     * a learned address turns out invalid.
     */
    Status remoteReadWithPrefetch(RemotePtr addr, void *dst, uint32_t len,
                                  const ReadHint &hint);

    /**
     * Local phase of the pipelined read (mirrors readInner steps 1-3:
     * tracking, overlay, pins, symmetric, prefetch training, admission,
     * cache). Returns true when the awaitable completed inline; false
     * means a remote miss — the caller suspends and the reactor serves
     * it in the next shared gather round.
     */
    bool pipelineLocalRead(ReadAwaitable &aw);

    /**
     * Serve every parked PendingRead as one doorbell-batched gather per
     * target (demanded reads deduped, speculative neighbors appended up
     * to prefetch_degree per op), then apply the post-miss cache/pin
     * bookkeeping each op's serial path would have done.
     */
    void serveBatchRound();

    /**
     * Re-run the local tiers for a read parked *before* a sibling op's
     * window write landed at its address: the overlay/cache now hold the
     * fresh bytes, so serving remotely would return a stale (or even
     * torn) image. Returns true when the read was satisfied locally.
     */
    bool pipelineRecheckLocal(ReadAwaitable &aw);

    /**
     * Read-your-writes backstop called from ReadAwaitable::await_resume:
     * when a sibling window write dirtied the awaitable's address AFTER
     * its bytes were served (intra-round staleness — the cross-round
     * case is caught by serveBatchRound's pre-gather recheck), replay
     * the local tiers and advance served_seq so write coroutines'
     * read-set validation does not restart over bytes that are in fact
     * fresh. A recheck miss (e.g. the address was freed mid-window)
     * leaves the served bytes alone — the consumer's own torn-view
     * handling applies, exactly as it would serially.
     */
    void pipelineRefreshIfStale(ReadAwaitable &aw);
    Status logWriteInternal(DsId ds, RemotePtr addr, const void *value,
                            uint32_t len, bool op_ref, uint32_t val_off);
    Status appendOpLogRecord(BackendCtx &c,
                             const std::vector<uint8_t> &rec,
                             bool sync);
    uint64_t ringReserve(uint64_t *head, uint64_t ring_size,
                         uint64_t ring_base, NodeId backend, size_t len,
                         bool sync);
    void overlayInsert(RemotePtr addr, const void *value, uint32_t len);
    bool overlayLookup(RemotePtr addr, void *dst, uint32_t len) const;
    Status symmetricRead(RemotePtr addr, void *dst, uint32_t len);
    Status symmetricWrite(RemotePtr addr, const void *value, uint32_t len);
    void processLocalRetired();

    SessionConfig cfg_;
    LatencyModel lat_;
    SimClock clock_;
    Verbs verbs_;
    std::unique_ptr<PageCache> cache_;

    std::map<NodeId, BackendCtx> backends_;

    /** Read-your-writes overlay of buffered (unflushed) memory logs. */
    std::unordered_map<uint64_t, std::vector<uint8_t>> overlay_;

    /** Batch-local pinned reads (vector operations). */
    std::unordered_map<uint64_t, std::vector<uint8_t>> pinned_;

    /** Writer locks currently held: (backend, ds) pairs. */
    std::map<std::pair<NodeId, DsId>, bool> held_locks_;

    /** Last observed writer generation per (backend, ds). */
    std::map<std::pair<NodeId, DsId>, uint64_t> writer_gen_;

    /** Last observed gc_epoch per (backend, ds) (MV invalidation). */
    std::map<std::pair<NodeId, DsId>, uint64_t> gc_epoch_seen_;

    /** Last observed seqlock SN per (backend, ds) (stale-cache guard). */
    std::map<std::pair<NodeId, DsId>, uint64_t> sn_seen_;

    /** Tracked read addresses for seqlock conflict invalidation. */
    std::vector<RemotePtr> tracked_reads_;
    bool tracking_ = false;

    std::map<std::pair<NodeId, DsId>, Replayer> replayers_;
    std::map<std::pair<NodeId, DsId>, std::function<Status()>>
        failover_hooks_;
    std::map<std::pair<NodeId, DsId>, std::function<void()>> flush_hooks_;
    std::map<std::pair<NodeId, DsId>, std::function<void()>>
        post_flush_hooks_;
    bool in_flush_ = false;

    /** Locally deferred frees of retired multi-version regions. */
    struct RetiredRegion
    {
        RemotePtr ptr;
        uint64_t size;
        uint64_t free_at_ns;
    };
    std::deque<RetiredRegion> local_retired_;

    uint32_t ops_in_batch_ = 0;
    uint64_t ops_started_ = 0;
    uint64_t tx_flushes_ = 0;
    LogFormatStats logfmt_;

    // Transparent-failover state.
    BackendResolver resolver_;
    FailoverConfig fo_cfg_;
    bool in_failover_ = false; //!< guards re-entry from recovery's flush
    bool in_op_ = false;       //!< between opBegin and opEnd
    NodeId last_failed_node_ = 0; //!< set when a flush fails
    uint64_t failovers_completed_ = 0;
    uint64_t failover_wait_ns_ = 0;
    std::map<NodeId, PromotionCounters> promo_; //!< race outcomes

    // Per-path latency observability (virtual ns).
    Histogram hist_commit_; //!< group-commit (opEnd / flushAll) latency
    Histogram hist_fanout_; //!< multi-back-end fan-out flush latency
    Histogram hist_read_remote_; //!< reads that issued remote verbs
    Histogram hist_read_local_;  //!< reads served from overlay/pin/cache
    bool last_read_remote_ = false; //!< set by readInner for read()

    // Traversal prefetch (read-side doorbell batching).
    PrefetchEngine prefetch_;
    std::vector<PrefetchCandidate> prefetch_scratch_; //!< collect() reuse
    std::vector<std::vector<uint8_t>> prefetch_bufs_; //!< gather landing
    uint64_t prefetch_batches_ = 0; //!< gathers that carried speculation
    uint64_t prefetch_issued_ = 0;  //!< speculative WQEs issued

    // Pipelined-operation reactor state (executePipelined).
    bool pipeline_active_ = false; //!< reactor owns scheduling
    /** Reads parked by suspended ops; the awaitables live in their
     *  coroutine frames, which stay alive until resumed past co_await. */
    std::vector<ReadAwaitable *> pending_reads_;
    /** Set when a pipelined opBegin posted its op log asynchronously:
     *  the drain flush must fence even at batch_size 1. */
    bool pipeline_posted_ops_ = false;
    /** Set when a pipelined opEnd hit its batch boundary: the commit is
     *  coalesced into one flushAll at window drain. */
    bool pipeline_commit_deferred_ = false;
    uint64_t pipe_ops_ = 0;          //!< ops completed via the reactor
    uint64_t pipe_runs_ = 0;         //!< executePipelined calls (depth>1)
    uint64_t pipe_rounds_ = 0;       //!< gather service rounds
    uint64_t pipe_batched_reads_ = 0; //!< demanded reads served in rounds
    uint64_t pipe_solo_rounds_ = 0;  //!< rounds with <= 1 pending read
    uint64_t pipe_max_in_flight_ = 0; //!< peak suspended ops
    uint64_t pipe_deferred_commits_ = 0; //!< fences coalesced to drain
    uint64_t pipe_batched_appends_ = 0;  //!< op-log appends ridden on
                                         //!< posted WQE chains
    uint64_t pipe_coalesced_fences_ = 0; //!< per-op fences absorbed into
                                         //!< the drain flushAll
    uint64_t pipe_dep_stalls_ = 0; //!< gate waits + validation restarts

    // Write-pipelining window state (cleared at every drain).
    /** Monotone sequence bumped by every window write (logWrite/free). */
    uint64_t pipe_write_seq_ = 0;
    /** addr -> seq of the latest window write there (read-set checks). */
    std::unordered_map<uint64_t, uint64_t> pipe_dirty_;
    /** (ds, conflict key) -> gate ticket of the owning in-flight op. */
    std::map<std::pair<uint64_t, uint64_t>, uint64_t> pipe_gates_;
    uint64_t pipe_ticket_ = 0; //!< gate ticket source (never reused)

    /**
     * Symmetric baseline's replication target: the remote mirror the
     * local-NVM "primary" ships its logs to (Section 9.2). Modeled as a
     * log-ring device behind the session's own verbs endpoint under a
     * reserved node id, so shipped log bytes ride the same postWrite
     * chain + doorbell path as the asymmetric group commit — keeping the
     * Table 3 comparison apples-to-apples.
     */
    static constexpr NodeId kSymReplicaId = 0xFFFD;
    static constexpr uint64_t kSymLogRingSize = 1ull << 20;
    std::unique_ptr<NvmDevice> sym_replica_;
    std::unique_ptr<NicModel> sym_nic_;
    uint64_t sym_log_head_ = 0; //!< monotonic ship position in the ring
};

} // namespace asymnvm

#endif // ASYMNVM_FRONTEND_SESSION_H_
