#include "frontend/prefetch.h"

#include <algorithm>

namespace asymnvm {

void
PrefetchEngine::onAccess(DsId ds, uint64_t stream, uint64_t addr_raw,
                         uint32_t len)
{
    if (stream == 0 || addr_raw == 0)
        return;
    if (streams_.size() >= kMaxStreams &&
        streams_.count({ds, stream}) == 0)
        evictColdest(); // keep hot predictions; shed the stalest stream
    Run &run = streams_[{ds, stream}];
    run.last_hit = ++tick_;
    if (!run.building.empty() && run.building.front().addr_raw == addr_raw) {
        // The walk wrapped back to the run's head: the recorded run is a
        // complete traversal — commit it as the prediction and start
        // recording the next pass.
        run.committed = std::move(run.building);
        run.building.clear();
        run.building.push_back(PrefetchCandidate{addr_raw, len});
        return;
    }
    if (run.building.size() < kMaxRunLen)
        run.building.push_back(PrefetchCandidate{addr_raw, len});
}

void
PrefetchEngine::collect(DsId ds, uint64_t stream, uint64_t demanded_raw,
                        std::vector<PrefetchCandidate> *out) const
{
    if (stream == 0)
        return;
    auto it = streams_.find({ds, stream});
    if (it == streams_.end())
        return;
    const std::vector<PrefetchCandidate> &run = it->second.committed;
    for (size_t i = 0; i < run.size(); ++i) {
        if (run[i].addr_raw != demanded_raw)
            continue;
        out->insert(out->end(), run.begin() + i + 1, run.end());
        return;
    }
}

void
PrefetchEngine::evictColdest()
{
    auto coldest = streams_.end();
    for (auto it = streams_.begin(); it != streams_.end(); ++it) {
        if (coldest == streams_.end() ||
            it->second.last_hit < coldest->second.last_hit)
            coldest = it;
    }
    if (coldest != streams_.end())
        streams_.erase(coldest);
}

void
PrefetchEngine::invalidateDs(DsId ds)
{
    for (auto it = streams_.begin(); it != streams_.end();) {
        if (it->first.first == ds)
            it = streams_.erase(it);
        else
            ++it;
    }
}

} // namespace asymnvm
