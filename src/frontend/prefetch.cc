#include "frontend/prefetch.h"

#include <algorithm>

namespace asymnvm {

void
PrefetchEngine::onAccess(DsId ds, uint64_t stream, uint64_t addr_raw,
                         uint32_t len)
{
    if (stream == 0 || addr_raw == 0)
        return;
    if (streams_.size() >= kMaxStreams &&
        streams_.count({ds, stream}) == 0)
        evictColdest(); // keep hot predictions; shed the stalest stream
    Run &run = streams_[{ds, stream}];
    run.last_hit = ++tick_;
    if (!run.building.empty() && run.building.front().addr_raw == addr_raw) {
        // The walk wrapped back to the run's head: the recorded run is a
        // complete traversal — commit it as the prediction and start
        // recording the next pass.
        run.committed = std::move(run.building);
        run.building.clear();
        run.building.push_back(PrefetchCandidate{addr_raw, len});
        return;
    }
    if (run.building.size() < kMaxRunLen)
        run.building.push_back(PrefetchCandidate{addr_raw, len});
}

void
PrefetchEngine::collect(DsId ds, uint64_t stream, uint64_t demanded_raw,
                        std::vector<PrefetchCandidate> *out)
{
    if (stream == 0)
        return;
    auto it = streams_.find({ds, stream});
    if (it == streams_.end())
        return;
    const std::vector<PrefetchCandidate> &run = it->second.committed;
    for (size_t i = 0; i < run.size(); ++i) {
        if (run[i].addr_raw != demanded_raw)
            continue;
        // The prediction fired: credit the stream so eviction favors
        // cold never-hit streams over this one.
        ++it->second.hits;
        it->second.last_hit = ++tick_;
        out->insert(out->end(), run.begin() + i + 1, run.end());
        return;
    }
}

void
PrefetchEngine::evictColdest()
{
    // Hit-rate-weighted LRU: recency plus a per-hit credit, so a stream
    // whose predictions were actually served survives newer streams that
    // never produced a hit (the LRU-of-streams ROADMAP note).
    const auto score = [](const Run &r) {
        return r.last_hit +
               std::min(r.hits, kMaxHitCredit) * kHitBonusTicks;
    };
    auto coldest = streams_.end();
    for (auto it = streams_.begin(); it != streams_.end(); ++it) {
        if (coldest == streams_.end() ||
            score(it->second) < score(coldest->second))
            coldest = it;
    }
    if (coldest != streams_.end())
        streams_.erase(coldest);
}

void
PrefetchEngine::invalidateDs(DsId ds)
{
    for (auto it = streams_.begin(); it != streams_.end();) {
        if (it->first.first == ds)
            it = streams_.erase(it);
        else
            ++it;
    }
}

} // namespace asymnvm
