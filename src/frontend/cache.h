#ifndef ASYMNVM_FRONTEND_CACHE_H_
#define ASYMNVM_FRONTEND_CACHE_H_

/**
 * @file
 * Front-end DRAM data cache (Section 4.4).
 *
 * The front-end maps remote NVM objects (tree nodes, hash-table items,
 * pages — "the page size is adjustable according to different data
 * structures") to local DRAM copies through a hash map. Three replacement
 * policies are provided:
 *
 *  - Lru:    exact LRU; best hit ratio but charges extra DRAM work on
 *            every access for list maintenance (the paper calls its
 *            implementation "expensive"),
 *  - Random: random replacement; cheap but keeps no hot data,
 *  - Hybrid: the paper's policy — sample a random set of K pages and
 *            evict the least recently used one of the set, combining
 *            LRU-quality hit ratios with RR-level bookkeeping cost.
 *
 * Entries are tagged with the owning data structure so multi-version
 * readers can flush a structure's entries when its gc_epoch advances
 * (reclaimed NVM may be reused; see Section 6.2 and frontend/session.h).
 */

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/rand.h"
#include "common/types.h"
#include "sim/clock.h"
#include "sim/latency.h"

namespace asymnvm {

/** Replacement policies for the front-end data cache. */
enum class CachePolicy : uint8_t
{
    Lru,
    Random,
    Hybrid,
};

/** Object-granularity DRAM cache in front of remote NVM. */
class PageCache
{
  public:
    /**
     * @param policy     Replacement policy.
     * @param capacity   Capacity in bytes of cached data.
     * @param clock      Session clock charged for probe/maintenance work.
     * @param lat        Cost constants.
     * @param sample_k   Sample-set size for the Hybrid policy (paper: 32).
     * @param seed       PRNG seed for Random/Hybrid sampling.
     */
    PageCache(CachePolicy policy, uint64_t capacity, SimClock *clock,
              const LatencyModel *lat, uint32_t sample_k = 32,
              uint64_t seed = 1234);

    /**
     * Probe for @p addr. On a hit, copies the cached bytes (which must
     * have been inserted with the same length) into @p dst.
     */
    bool lookup(RemotePtr addr, void *dst, uint32_t len);

    /** Insert (or refresh) an object; evicts per policy to make room. */
    void insert(DsId ds, RemotePtr addr, const void *data, uint32_t len);

    /**
     * Insert bytes fetched speculatively by a read gather. The entry is
     * tagged speculative and pre-aged (logical tick 0, LRU tail) so it is
     * the preferred victim under every policy until a real lookup hits it
     * — prefetched garbage must not displace proven-hot entries. The
     * first hit promotes it to a normal entry (and counts prefetchHits);
     * eviction or invalidation while still speculative counts
     * prefetchWasted. @p issue_epoch is the epochNow() snapshot taken
     * when the gather was ISSUED: an invalidateDs that lands between
     * issue and completion outranks the data, and the insert is dropped.
     */
    void insertSpeculative(DsId ds, RemotePtr addr, const void *data,
                           uint32_t len, uint64_t issue_epoch);

    /**
     * Write-through update after a memory log: patch the cached copy if
     * present. Length mismatch invalidates the entry instead.
     */
    void update(RemotePtr addr, const void *data, uint32_t len);

    /** Drop one object. */
    void invalidate(RemotePtr addr);

    /** Drop every object belonging to @p ds (gc_epoch advanced). */
    void invalidateDs(DsId ds);

    /** Drop everything (back-end failover, Section 4.3). */
    void clear();

    /**
     * Pure presence probe (no stats, no clock charge): true when a valid
     * same-length entry exists. The prefetch path uses this to avoid
     * gathering bytes that are already resident.
     */
    bool contains(RemotePtr addr, uint32_t len) const;

    /**
     * Current invalidation epoch. Snapshot BEFORE issuing a read gather
     * and pass to insertSpeculative so a concurrent invalidateDs drops
     * the in-flight prefetch.
     */
    uint64_t epochNow() const { return epoch_; }

    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }
    uint64_t evictions() const { return evictions_; }
    uint64_t sizeBytes() const { return size_bytes_; }
    uint64_t entryCount() const { return map_.size(); }
    uint64_t prefetchHits() const { return prefetch_hits_; }
    uint64_t prefetchWasted() const { return prefetch_wasted_; }

    /** Observed miss ratio since the last resetStats(). */
    double missRatio() const
    {
        const uint64_t total = hits_ + misses_;
        return total == 0 ? 0.0
                          : static_cast<double>(misses_) / total;
    }

    void resetStats()
    {
        hits_ = misses_ = evictions_ = 0;
        prefetch_hits_ = prefetch_wasted_ = 0;
    }

  private:
    struct Entry
    {
        DsId ds;
        std::vector<uint8_t> data;
        uint64_t tick;              //!< last-use logical time
        uint64_t epoch;             //!< insertion epoch (DS invalidation)
        size_t keys_idx;            //!< position in keys_ (Random/Hybrid)
        std::list<uint64_t>::iterator lru_it; //!< valid under Lru
        bool speculative = false;   //!< prefetched, no real hit yet
    };

    bool entryValid(const Entry &e) const;

    void evictOne();
    void removeKey(uint64_t raw);

    CachePolicy policy_;
    uint64_t capacity_;
    SimClock *clock_;
    const LatencyModel *lat_;
    uint32_t sample_k_;
    Rng rng_;

    std::unordered_map<uint64_t, Entry> map_;
    std::vector<uint64_t> keys_;    //!< dense key set for random sampling
    std::list<uint64_t> lru_list_;  //!< MRU at front (Lru policy only)

    uint64_t tick_ = 0;
    uint64_t epoch_ = 1;
    std::unordered_map<DsId, uint64_t> ds_min_epoch_;
    uint64_t size_bytes_ = 0;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
    uint64_t evictions_ = 0;
    uint64_t prefetch_hits_ = 0;
    uint64_t prefetch_wasted_ = 0;
};

/**
 * Adaptive level-based cache admission for tree-like structures
 * (Section 8.3): only nodes at level <= N are admitted; N decreases when
 * the miss ratio exceeds 50% and increases when it drops below 25%,
 * evaluated over fixed-size windows of accesses.
 */
class LevelAdmission
{
  public:
    explicit LevelAdmission(uint32_t initial_n = 8, uint32_t window = 512)
        : n_(initial_n), window_(window)
    {}

    /** Should a node at @p level (root = 0) be admitted to the cache? */
    bool admit(uint32_t level) const { return level <= n_; }

    /** Record the outcome of one cacheable read. */
    void record(bool hit)
    {
        ++accesses_;
        misses_ += hit ? 0 : 1;
        if (accesses_ < window_)
            return;
        const double ratio =
            static_cast<double>(misses_) / static_cast<double>(accesses_);
        if (ratio > 0.50 && n_ > 0)
            --n_;
        else if (ratio < 0.25 && n_ < 64)
            ++n_;
        accesses_ = misses_ = 0;
    }

    uint32_t level() const { return n_; }

  private:
    uint32_t n_;
    uint32_t window_;
    uint64_t accesses_ = 0;
    uint64_t misses_ = 0;
};

} // namespace asymnvm

#endif // ASYMNVM_FRONTEND_CACHE_H_
