#ifndef ASYMNVM_FRONTEND_ALLOCATOR_H_
#define ASYMNVM_FRONTEND_ALLOCATOR_H_

/**
 * @file
 * Front-end tier of the two-tier slab allocator (Section 5.2).
 *
 * The back-end hands out fixed-size slabs; the front-end subdivides them
 * at finer granularity. Slabs are organized in full-, partial-, and
 * empty-lists according to consumption, sub-slab allocation is best-fit,
 * and surplus empty slabs are reclaimed to the back-end via RPC. Table 2
 * of the paper compares this design against an RPC-per-allocation
 * strawman and the local-only NVML/glibc allocators —
 * bench/bench_table2_allocators.cc regenerates that comparison.
 *
 * Reclaim hysteresis adapts to the workload: the allocator keeps as many
 * empty slabs as the last `hysteresis_cycles` alloc/free cycles actually
 * drew from the empty list. Group-commit retirement (MV structures under
 * batching) frees slabs in batch-sized bursts that the very next batch
 * re-allocates; a fixed keep level turns that cycle into a
 * FreeBlocks/AllocBlocks RPC ping-pong with the back-end — the dominant
 * RPC traffic of the MV benches before this was measured. The window is
 * configurable (SessionConfig::alloc_hysteresis_cycles, default 2)
 * because the demand peak must stay inside it: a workload oscillating
 * with a period of k cycles needs a window >= k or the heavy cycle's
 * demand rotates out during the quiet ones and the ping-pong reappears.
 * When demand collapses for good, the keep level follows it down within
 * a window's worth of cycles and the surplus drains to the static
 * threshold.
 *
 * Sub-slab allocation metadata is volatile (it lives in front-end DRAM);
 * after a front-end crash the allocation state is recovered only at slab
 * granularity from the back-end's persistent bitmap, exactly the trade-off
 * Section 5.2 describes.
 */

#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <map>
#include <set>
#include <span>
#include <unordered_map>

#include "common/types.h"

namespace asymnvm {

enum class RpcOp : uint32_t;

/** Front-end (second-tier) slab allocator for one back-end. */
class FrontendAllocator
{
  public:
    /**
     * Transport used to reach the back-end allocator: normally bound to
     * RfpRpc::call, or to a direct local call in the symmetric baseline.
     */
    using RpcFn = std::function<Status(
        RpcOp op, std::span<const uint64_t> args,
        std::span<const uint8_t> payload, uint64_t rets[4])>;

    /**
     * @param backend          Back-end node id (for RemotePtr stamping).
     * @param slab_size        Back-end block size in bytes.
     * @param rpc              Transport to the back-end allocator.
     * @param reclaim_threshold Static floor of the reclaim hysteresis:
     *                          surplus above max(threshold, measured
     *                          cycle demand) is returned to the back-end.
     * @param hysteresis_cycles Demand-window length: empty slabs are
     *                          retained up to the peak consumption of
     *                          this many recent alloc/free cycles
     *                          (clamped to >= 1; 2 reproduces the
     *                          original current+previous pair).
     */
    FrontendAllocator(NodeId backend, uint64_t slab_size, RpcFn rpc,
                      uint32_t reclaim_threshold = 32,
                      uint32_t hysteresis_cycles = 2);

    /** Allocate @p size bytes of back-end NVM. */
    Status alloc(uint64_t size, RemotePtr *out);

    /** Free an allocation of @p size bytes at @p p. */
    Status free(RemotePtr p, uint64_t size);

    /** Drop all volatile sub-slab state (front-end crash simulation). */
    void loseVolatileState();

    uint64_t slabsHeld() const { return slabs_.size(); }
    uint64_t rpcAllocs() const { return rpc_allocs_; }
    uint64_t localAllocs() const { return local_allocs_; }
    uint64_t leakedForeignFrees() const { return leaked_foreign_; }
    /** Empty slabs the adaptive hysteresis currently retains. */
    uint64_t emptySlabsHeld() const { return empty_count_; }
    /** Configured demand-window length (cycles). */
    uint32_t hysteresisCycles() const { return hysteresis_cycles_; }

  private:
    struct Slab
    {
        uint64_t base;                    //!< absolute NVM offset
        uint64_t free_bytes;
        uint64_t largest_hole;            //!< index key into by_hole_
        std::map<uint64_t, uint64_t> holes; //!< offset -> length
    };

    Status allocLarge(uint64_t size, RemotePtr *out);
    Status newSlab();
    void reindex(Slab &slab);
    void maybeReclaim();
    static uint64_t roundUp(uint64_t v) { return (v + 7) & ~7ull; }

    NodeId backend_;
    uint64_t slab_size_;
    RpcFn rpc_;
    uint32_t reclaim_threshold_;

    std::map<uint64_t, Slab> slabs_; //!< keyed by base offset (ordered)
    /** (largest hole, base): best-fit slab lookup is one lower_bound. */
    std::set<std::pair<uint64_t, uint64_t>> by_hole_;
    uint32_t empty_count_ = 0;
    /**
     * Demand estimate for the adaptive hysteresis: empty slabs consumed
     * (turned partial, including fresh refills) during the current
     * alloc phase, plus the per-cycle totals of up to
     * hysteresis_cycles_ - 1 closed cycles (newest at the back). A free
     * after an alloc closes the cycle.
     */
    uint64_t cycle_consumed_ = 0;
    std::deque<uint64_t> past_cycles_;
    uint32_t hysteresis_cycles_;
    bool in_free_phase_ = false;
    uint64_t rpc_allocs_ = 0;
    uint64_t local_allocs_ = 0;
    uint64_t leaked_foreign_ = 0;
};

} // namespace asymnvm

#endif // ASYMNVM_FRONTEND_ALLOCATOR_H_
