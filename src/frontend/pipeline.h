#ifndef ASYMNVM_FRONTEND_PIPELINE_H_
#define ASYMNVM_FRONTEND_PIPELINE_H_

/**
 * @file
 * Coroutine-pipelined session operations.
 *
 * A depth-d remote traversal pays d dependent round trips even with the
 * read-gather prefetch: the next hop's address is only known after the
 * current node arrives. One *operation* therefore cannot go faster than
 * its pointer-chase depth — but one *session* can, by keeping several
 * independent operations in flight and overlapping their round trips.
 *
 * The data structure read AND write paths (bptree, mv_bptree, skiplist,
 * hash_table, stack, queue) are decomposed into resumable C++20
 * coroutines returning OpTask. Each remote fetch becomes a suspension
 * point (`co_await session->asyncRead`): when the requested bytes are
 * local (overlay / pin / cache) the awaitable completes inline and the
 * coroutine keeps running; on a remote miss it parks a PendingRead with
 * the session's reactor and suspends. The reactor
 * (FrontendSession::executePipelined) keeps a window of
 * `SessionConfig::pipeline_depth` operations admitted, collects every
 * suspended op's demanded read, and serves the whole round as ONE
 * doorbell-batched read chain (Verbs::readGather — one doorbell, one NIC
 * arrival, one RTT plus combined wire bytes). N in-flight depth-d lookups
 * thus cost ~d round trips instead of N*d.
 *
 * Write ops pipeline in two phases. Phase A — the traversal reads the
 * serial op performs before its first write — suspends like a lookup and
 * joins the shared read round; every read is stamped with the
 * session-local write sequence it observed. Phase B — the serial write
 * tail, verbatim — runs inline and unsuspended once the read set
 * validates, so it is atomic with respect to sibling window ops. A
 * same-key/same-structure conflict is prevented up front by a
 * WindowGate (later ops park until the earlier one retires), and a
 * stale read set (a sibling wrote under a suspended descent) triggers a
 * re-descent against the now-local tiers rather than a wire retry. The
 * ops' op-log/memory-log appends ride one doorbell-batched WQE chain
 * per round, and their commit fences coalesce into a single flush at
 * window drain (PipelineStats::{batched_appends, coalesced_fences}).
 *
 * Depth 1 (the default) never suspends: asyncRead falls through to the
 * serial FrontendSession::read and opBegin/opEnd keep their serial
 * fence behavior, keeping wire traffic bit-identical to the
 * non-pipelined session — the ablation baseline.
 *
 * No OS threads are involved: coroutine frames are resumed from the
 * reactor loop on the session thread, in virtual time.
 */

#include <coroutine>
#include <cstdint>
#include <utility>

#include "common/types.h"

namespace asymnvm {

/**
 * A resumable session operation. The coroutine body is a data structure
 * read/write path; `co_return Status` delivers the operation's result.
 *
 * Lazily started (initial_suspend = always): creating an OpTask runs no
 * user code until the reactor admits it with resume(), so a caller can
 * build a batch of tasks and hand them to executePipelined together.
 */
class OpTask
{
  public:
    struct promise_type
    {
        Status result = Status::Ok;

        OpTask get_return_object() noexcept
        {
            return OpTask(Handle::from_promise(*this));
        }
        std::suspend_always initial_suspend() noexcept { return {}; }
        std::suspend_always final_suspend() noexcept { return {}; }
        void return_value(Status st) noexcept { result = st; }
        void unhandled_exception() noexcept { result = Status::Corruption; }
    };

    using Handle = std::coroutine_handle<promise_type>;

    OpTask() = default;
    explicit OpTask(Handle h) : h_(h) {}
    OpTask(OpTask &&o) noexcept : h_(std::exchange(o.h_, nullptr)) {}
    OpTask &operator=(OpTask &&o) noexcept
    {
        if (this != &o) {
            destroy();
            h_ = std::exchange(o.h_, nullptr);
        }
        return *this;
    }
    OpTask(const OpTask &) = delete;
    OpTask &operator=(const OpTask &) = delete;
    ~OpTask() { destroy(); }

    /** Run until the next suspension point (or completion). */
    void resume()
    {
        if (h_ && !h_.done())
            h_.resume();
    }

    /** True once the coroutine ran to its co_return. */
    bool done() const { return !h_ || h_.done(); }

    /** The operation's result; valid once done(). */
    Status status() const
    {
        return h_ ? h_.promise().result : Status::InvalidArgument;
    }

    bool valid() const { return static_cast<bool>(h_); }

  private:
    void destroy()
    {
        if (h_) {
            h_.destroy();
            h_ = nullptr;
        }
    }

    Handle h_;
};

} // namespace asymnvm

#endif // ASYMNVM_FRONTEND_PIPELINE_H_
