#include "frontend/cache.h"

#include <algorithm>
#include <cstring>

namespace asymnvm {

PageCache::PageCache(CachePolicy policy, uint64_t capacity, SimClock *clock,
                     const LatencyModel *lat, uint32_t sample_k,
                     uint64_t seed)
    : policy_(policy), capacity_(capacity), clock_(clock), lat_(lat),
      sample_k_(sample_k), rng_(seed)
{}

bool
PageCache::entryValid(const Entry &e) const
{
    auto it = ds_min_epoch_.find(e.ds);
    return it == ds_min_epoch_.end() || e.epoch >= it->second;
}

bool
PageCache::lookup(RemotePtr addr, void *dst, uint32_t len)
{
    clock_->advance(lat_->cache_probe_ns);
    auto it = map_.find(addr.raw());
    if (it == map_.end() || it->second.data.size() != len ||
        !entryValid(it->second)) {
        if (it != map_.end() && !entryValid(it->second))
            removeKey(addr.raw()); // lazily drop invalidated entries
        ++misses_;
        return false;
    }
    Entry &e = it->second;
    std::memcpy(dst, e.data.data(), len);
    e.tick = ++tick_;
    if (e.speculative) {
        // First real hit: the prefetch paid off — promote to a normal
        // entry so it competes for residency like any other hot object.
        e.speculative = false;
        ++prefetch_hits_;
    }
    clock_->advance(lat_->dram_access_ns);
    if (policy_ == CachePolicy::Lru) {
        // Exact LRU pays list maintenance on every access — this is the
        // overhead the hybrid policy avoids (Section 4.4).
        lru_list_.splice(lru_list_.begin(), lru_list_, e.lru_it);
        clock_->advance(2 * lat_->dram_access_ns);
    }
    ++hits_;
    return true;
}

void
PageCache::insert(DsId ds, RemotePtr addr, const void *data, uint32_t len)
{
    if (len > capacity_)
        return;
    const uint64_t raw = addr.raw();
    auto it = map_.find(raw);
    if (it != map_.end()) {
        if (it->second.data.size() == len) {
            it->second.ds = ds;
            std::memcpy(it->second.data.data(), data, len);
            it->second.tick = ++tick_;
            it->second.epoch = epoch_;
            it->second.speculative = false; // demanded bytes: a real entry
            clock_->advance(lat_->dram_access_ns);
            return;
        }
        // Size changed: fall through to a fresh insert so the eviction
        // loop keeps size_bytes_ within capacity_.
        removeKey(raw);
    }
    while (size_bytes_ + len > capacity_ && !map_.empty())
        evictOne();
    Entry e;
    e.ds = ds;
    e.data.assign(static_cast<const uint8_t *>(data),
                  static_cast<const uint8_t *>(data) + len);
    e.tick = ++tick_;
    e.epoch = epoch_;
    e.keys_idx = keys_.size();
    keys_.push_back(raw);
    if (policy_ == CachePolicy::Lru) {
        lru_list_.push_front(raw);
        e.lru_it = lru_list_.begin();
    }
    size_bytes_ += len;
    map_.emplace(raw, std::move(e));
    clock_->advance(lat_->dram_access_ns);
}

void
PageCache::insertSpeculative(DsId ds, RemotePtr addr, const void *data,
                             uint32_t len, uint64_t issue_epoch)
{
    if (len > capacity_)
        return;
    // An invalidateDs between gather issue and completion outranks the
    // data: the fetched bytes may predate a gc-epoch bump (reclaimed NVM
    // could already be reused), so the in-flight entry is dropped.
    auto eit = ds_min_epoch_.find(ds);
    if (eit != ds_min_epoch_.end() && issue_epoch < eit->second) {
        ++prefetch_wasted_;
        return;
    }
    const uint64_t raw = addr.raw();
    auto it = map_.find(raw);
    if (it != map_.end()) {
        if (entryValid(it->second))
            return; // never downgrade a live entry to speculative
        removeKey(raw);
    }
    while (size_bytes_ + len > capacity_ && !map_.empty())
        evictOne();
    Entry e;
    e.ds = ds;
    e.data.assign(static_cast<const uint8_t *>(data),
                  static_cast<const uint8_t *>(data) + len);
    // Pre-aged on purpose: tick 0 loses every Hybrid sample comparison
    // and the LRU tail position is the next victim, so an unproven
    // prefetch never displaces a proven-hot entry under either policy.
    e.tick = 0;
    e.epoch = issue_epoch;
    e.speculative = true;
    e.keys_idx = keys_.size();
    keys_.push_back(raw);
    if (policy_ == CachePolicy::Lru) {
        lru_list_.push_back(raw);
        e.lru_it = std::prev(lru_list_.end());
    }
    size_bytes_ += len;
    map_.emplace(raw, std::move(e));
    clock_->advance(lat_->dram_access_ns);
}

bool
PageCache::contains(RemotePtr addr, uint32_t len) const
{
    auto it = map_.find(addr.raw());
    return it != map_.end() && it->second.data.size() == len &&
           entryValid(it->second);
}

void
PageCache::update(RemotePtr addr, const void *data, uint32_t len)
{
    auto it = map_.find(addr.raw());
    if (it == map_.end())
        return;
    if (it->second.data.size() != len) {
        invalidate(addr);
        return;
    }
    std::memcpy(it->second.data.data(), data, len);
    clock_->advance(lat_->dram_access_ns);
}

void
PageCache::removeKey(uint64_t raw)
{
    auto it = map_.find(raw);
    if (it == map_.end())
        return;
    Entry &e = it->second;
    if (e.speculative)
        ++prefetch_wasted_; // evicted/invalidated before any real hit
    // Swap-pop from the dense key vector.
    const size_t idx = e.keys_idx;
    keys_[idx] = keys_.back();
    map_[keys_[idx]].keys_idx = idx;
    keys_.pop_back();
    if (policy_ == CachePolicy::Lru)
        lru_list_.erase(e.lru_it);
    size_bytes_ -= e.data.size();
    map_.erase(it);
}

void
PageCache::invalidate(RemotePtr addr)
{
    removeKey(addr.raw());
}

void
PageCache::invalidateDs(DsId ds)
{
    // O(1): entries of this structure inserted before the new epoch are
    // treated as misses and lazily removed on their next probe.
    ds_min_epoch_[ds] = ++epoch_;
    clock_->advance(lat_->dram_access_ns);
}

void
PageCache::clear()
{
    map_.clear();
    keys_.clear();
    lru_list_.clear();
    ds_min_epoch_.clear();
    size_bytes_ = 0;
}

void
PageCache::evictOne()
{
    if (map_.empty())
        return;
    ++evictions_;
    switch (policy_) {
      case CachePolicy::Lru: {
        removeKey(lru_list_.back());
        clock_->advance(lat_->dram_access_ns);
        return;
      }
      case CachePolicy::Random: {
        const uint64_t raw = keys_[rng_.nextBounded(keys_.size())];
        removeKey(raw);
        clock_->advance(lat_->dram_access_ns);
        return;
      }
      case CachePolicy::Hybrid: {
        // Sample a random set and discard the least-recently-used member.
        uint64_t victim = 0;
        uint64_t best_tick = UINT64_MAX;
        const uint32_t k =
            static_cast<uint32_t>(std::min<uint64_t>(sample_k_,
                                                     keys_.size()));
        for (uint32_t i = 0; i < k; ++i) {
            const uint64_t raw = keys_[rng_.nextBounded(keys_.size())];
            const uint64_t t = map_[raw].tick;
            if (t < best_tick) {
                best_tick = t;
                victim = raw;
            }
        }
        removeKey(victim);
        // Sampling touches k cache slots' metadata.
        clock_->advance(k * lat_->dram_access_ns / 8);
        return;
      }
    }
}

} // namespace asymnvm
