#include "frontend/allocator.h"

#include <algorithm>
#include <cassert>
#include <vector>

#include "rdma/rpc.h"

namespace asymnvm {

FrontendAllocator::FrontendAllocator(NodeId backend, uint64_t slab_size,
                                     RpcFn rpc, uint32_t reclaim_threshold,
                                     uint32_t hysteresis_cycles)
    : backend_(backend), slab_size_(slab_size), rpc_(std::move(rpc)),
      reclaim_threshold_(reclaim_threshold),
      hysteresis_cycles_(std::max(1u, hysteresis_cycles))
{}

void
FrontendAllocator::reindex(Slab &slab)
{
    // Keep the by-largest-hole index current so best-fit allocation is
    // a single ordered lookup, independent of how many (nearly) full
    // slabs have accumulated.
    uint64_t largest = 0;
    for (const auto &[off, len] : slab.holes)
        largest = std::max(largest, len);
    if (largest != slab.largest_hole) {
        by_hole_.erase({slab.largest_hole, slab.base});
        slab.largest_hole = largest;
        if (largest != 0)
            by_hole_.insert({largest, slab.base});
    } else if (largest != 0 &&
               by_hole_.count({largest, slab.base}) == 0) {
        by_hole_.insert({largest, slab.base});
    }
}

Status
FrontendAllocator::allocLarge(uint64_t size, RemotePtr *out)
{
    const uint64_t nblocks = (size + slab_size_ - 1) / slab_size_;
    uint64_t args[1] = {nblocks};
    uint64_t rets[4] = {};
    const Status st = rpc_(RpcOp::AllocBlocks, args, {}, rets);
    if (!ok(st))
        return st;
    ++rpc_allocs_;
    *out = RemotePtr(backend_, rets[0]);
    return Status::Ok;
}

Status
FrontendAllocator::newSlab()
{
    // Refill several slabs per RPC: one round trip amortizes over
    // kRefillSlabs slab-worths of fine-grained allocations, the point
    // of the two-tier design (Section 5.2).
    constexpr uint64_t kRefillSlabs = 8;
    uint64_t args[1] = {kRefillSlabs};
    uint64_t rets[4] = {};
    Status st = rpc_(RpcOp::AllocBlocks, args, {}, rets);
    uint64_t got = kRefillSlabs;
    if (st == Status::OutOfMemory) {
        // Memory pressure: fall back to a single block.
        args[0] = 1;
        st = rpc_(RpcOp::AllocBlocks, args, {}, rets);
        got = 1;
    }
    if (!ok(st))
        return st;
    ++rpc_allocs_;
    for (uint64_t i = 0; i < got; ++i) {
        Slab slab;
        slab.base = rets[0] + i * slab_size_;
        slab.free_bytes = slab_size_;
        slab.largest_hole = slab_size_;
        slab.holes[0] = slab_size_;
        by_hole_.insert({slab_size_, slab.base});
        slabs_.emplace(slab.base, std::move(slab));
    }
    empty_count_ += static_cast<uint32_t>(got);
    return Status::Ok;
}

Status
FrontendAllocator::alloc(uint64_t size, RemotePtr *out)
{
    if (size == 0)
        return Status::InvalidArgument;
    size = roundUp(size);
    if (size > slab_size_)
        return allocLarge(size, out);

    // First allocation after a free phase opens a new demand cycle; the
    // closed cycle's consumption enters the hysteresis window and the
    // oldest entry beyond the window rotates out.
    if (in_free_phase_) {
        in_free_phase_ = false;
        past_cycles_.push_back(cycle_consumed_);
        while (past_cycles_.size() >= hysteresis_cycles_)
            past_cycles_.pop_front();
        cycle_consumed_ = 0;
    }

    // Best fit: the partial slab hole with the least leftover wins.
    // Scanning is bounded to keep host cost O(1): allocation sizes are
    // few in practice, so an exact hit appears within a few slabs.
    Slab *best_slab = nullptr;
    uint64_t best_off = 0;
    uint64_t best_leftover = UINT64_MAX;
    auto consider = [&](Slab &slab) {
        if (slab.free_bytes < size)
            return;
        for (const auto &[off, len] : slab.holes) {
            if (len >= size && len - size < best_leftover) {
                best_leftover = len - size;
                best_slab = &slab;
                best_off = off;
            }
        }
    };
    // Best-fit slab: the smallest largest-hole that still fits, found
    // with one ordered lookup; a couple of neighbors refine the choice.
    uint32_t candidates = 0;
    for (auto it = by_hole_.lower_bound({size, 0});
         it != by_hole_.end(); ++it) {
        consider(slabs_.at(it->second));
        if (best_leftover == 0 || ++candidates >= 4)
            break;
    }
    if (best_slab == nullptr) {
        const Status st = newSlab();
        if (!ok(st))
            return st;
        return alloc(size, out);
    }
    const uint64_t hole_len = best_slab->holes[best_off];
    best_slab->holes.erase(best_off);
    if (hole_len > size)
        best_slab->holes[best_off + size] = hole_len - size;
    if (best_slab->free_bytes == slab_size_) {
        --empty_count_;
        ++cycle_consumed_; // the empty list met demand this cycle
    }
    best_slab->free_bytes -= size;
    reindex(*best_slab);
    ++local_allocs_;
    *out = RemotePtr(backend_, best_slab->base + best_off);
    return Status::Ok;
}

Status
FrontendAllocator::free(RemotePtr p, uint64_t size)
{
    if (p.isNull() || size == 0 || p.backend != backend_)
        return Status::InvalidArgument;
    size = roundUp(size);
    if (size > slab_size_) {
        const uint64_t nblocks = (size + slab_size_ - 1) / slab_size_;
        uint64_t args[2] = {p.offset, nblocks};
        return rpc_(RpcOp::FreeBlocks, args, {}, nullptr);
    }
    // Locate the owning slab: the greatest base <= offset.
    auto sit = slabs_.upper_bound(p.offset);
    if (sit != slabs_.begin()) {
        --sit;
        Slab &slab = sit->second;
        const uint64_t base = sit->first;
        if (p.offset >= base && p.offset + size <= base + slab_size_) {
            uint64_t off = p.offset - base;
            uint64_t len = size;
            // Coalesce with neighbors.
            auto next = slab.holes.lower_bound(off);
            if (next != slab.holes.end() && off + len == next->first) {
                len += next->second;
                next = slab.holes.erase(next);
            }
            if (next != slab.holes.begin()) {
                auto prev = std::prev(next);
                if (prev->first + prev->second == off) {
                    off = prev->first;
                    len += prev->second;
                    slab.holes.erase(prev);
                }
            }
            slab.holes[off] = len;
            slab.free_bytes += size;
            reindex(slab);
            if (slab.free_bytes == slab_size_)
                ++empty_count_;
            in_free_phase_ = true;
            maybeReclaim();
            return Status::Ok;
        }
    }
    // Not one of ours (allocated by a previous incarnation or another
    // session). Section 5.2: allocation state recovers only at slab
    // granularity, so sub-slab regions inside foreign slabs leak until
    // the owning slab is reclaimed; freeing the block here could corrupt
    // live neighbours.
    ++leaked_foreign_;
    return Status::Ok;
}

void
FrontendAllocator::maybeReclaim()
{
    // Adaptive hysteresis: keep enough empty slabs to absorb the peak
    // demand of the last hysteresis_cycles_ alloc/free cycles, so
    // burst-retire/burst-alloc workloads (group commit, Section 8.3)
    // do not ping-pong the same slabs through FreeBlocks/AllocBlocks
    // round trips — even when quiet cycles separate the bursts, as long
    // as the oscillation period fits the window. A workload whose
    // demand collapses sees keep follow it down within a window of
    // cycles and the surplus drains to the floor.
    uint64_t keep =
        std::max<uint64_t>(reclaim_threshold_ / 2, cycle_consumed_);
    for (const uint64_t c : past_cycles_)
        keep = std::max(keep, c);
    if (empty_count_ <= std::max<uint64_t>(reclaim_threshold_, keep))
        return;
    // Collect fully free slabs (top of the hole-size index), keep the
    // hysteresis level's worth around, and return the rest — contiguous
    // runs coalesce into single FreeBlocks calls so a burst of frees
    // costs O(runs) round trips, not O(slabs).
    std::vector<uint64_t> bases;
    for (auto it = by_hole_.lower_bound({slab_size_, 0});
         it != by_hole_.end() && it->first == slab_size_ &&
         empty_count_ - bases.size() > keep;
         ++it) {
        bases.push_back(it->second);
    }
    if (bases.empty())
        return;
    std::sort(bases.begin(), bases.end());
    size_t run_start = 0;
    for (size_t i = 1; i <= bases.size(); ++i) {
        const bool run_ends =
            i == bases.size() ||
            bases[i] != bases[i - 1] + slab_size_;
        if (run_ends) {
            uint64_t args[2] = {bases[run_start], i - run_start};
            rpc_(RpcOp::FreeBlocks, args, {}, nullptr);
            run_start = i;
        }
    }
    for (uint64_t base : bases) {
        by_hole_.erase({slab_size_, base});
        slabs_.erase(base);
        --empty_count_;
    }
}

void
FrontendAllocator::loseVolatileState()
{
    slabs_.clear();
    by_hole_.clear();
    empty_count_ = 0;
    cycle_consumed_ = 0;
    past_cycles_.clear();
    in_free_phase_ = false;
}

} // namespace asymnvm
