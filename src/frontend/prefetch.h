#ifndef ASYMNVM_FRONTEND_PREFETCH_H_
#define ASYMNVM_FRONTEND_PREFETCH_H_

/**
 * @file
 * Traversal prefetch policy for the remote-read hot path.
 *
 * A dependent remote traversal (B+-tree descent, skiplist walk, hash
 * chain) pays one RDMA_Read round trip per pointer hop. The session can
 * hide part of that cost by gathering the demanded node *plus* likely
 * neighbors in one doorbell-batched read chain (Verbs::readGather). Two
 * candidate sources feed that gather:
 *
 *  1. Explicit structural neighbors the data structure already knows
 *     (sibling children around the taken B+-tree route, the lower levels
 *     of a skiplist tower). These ride in `ReadHint::neighbors` and need
 *     no history.
 *  2. Learned runs for pointer chains whose successors are NOT known
 *     before the read (hash-table bucket chains, skiplist bottom-level
 *     scans). The structure labels such reads with a stable `stream` id
 *     (e.g. the bucket address); this engine records the address run
 *     observed under each stream and, when the run's head is re-visited,
 *     commits it as the prediction for the next traversal.
 *
 * The engine is purely volatile, per-session state: it holds addresses,
 * never data, so it needs no invalidation protocol beyond dropping its
 * predictions when the owning structure's gc epoch bumps (stale addresses
 * would at worst prefetch garbage bytes that cache-validate away — but
 * dropping them avoids wasted wire traffic).
 */

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace asymnvm {

/** One speculative read the prefetch policy proposes to gather. */
struct PrefetchCandidate
{
    uint64_t addr_raw = 0; //!< RemotePtr::raw() of the neighbor
    uint32_t len = 0;      //!< bytes to fetch (the node size)
};

/** Per-session learned-run predictor for chain-shaped traversals. */
class PrefetchEngine
{
  public:
    /**
     * Record that @p ds read @p len bytes at @p addr_raw while walking
     * @p stream. Re-visiting the first address of the run under
     * construction commits that run as the stream's prediction and starts
     * recording the next one — so a bucket chain's full membership is
     * predictable from its second traversal on.
     */
    void onAccess(DsId ds, uint64_t stream, uint64_t addr_raw,
                  uint32_t len);

    /**
     * Append to @p out the committed successors of @p demanded_raw in
     * @p stream's predicted run (empty when the stream is unknown or the
     * address is not part of the prediction). A successful prediction
     * counts as a hit on the stream and refreshes its eviction score.
     */
    void collect(DsId ds, uint64_t stream, uint64_t demanded_raw,
                 std::vector<PrefetchCandidate> *out);

    /** Forget every prediction for @p ds (gc epoch bump / structure drop). */
    void invalidateDs(DsId ds);

    /** Forget everything (crash, failover: volatile state dies). */
    void clear() { streams_.clear(); }

    /** Streams currently tracked (observability / tests). */
    size_t streamCount() const { return streams_.size(); }

  private:
    /** Longest run recorded per stream (bounds memory and gather size). */
    static constexpr size_t kMaxRunLen = 64;
    /** Tracked-stream cap; overflow evicts the lowest-scoring stream
     *  (hit-rate-weighted LRU) so hot predictions survive bursts of
     *  one-shot streams. */
    static constexpr size_t kMaxStreams = 4096;
    /**
     * Eviction-score credit per served prediction, in recency ticks. One
     * hit is worth a full table turnover of cold streams: a stream whose
     * prediction actually fired outlives every never-hit stream that
     * merely arrived later, until the table churns past its credit.
     */
    static constexpr uint64_t kHitBonusTicks = kMaxStreams;
    /** Hits credited at most this many times (bounds score staleness). */
    static constexpr uint64_t kMaxHitCredit = 4;

    struct Run
    {
        std::vector<PrefetchCandidate> committed; //!< last full traversal
        std::vector<PrefetchCandidate> building;  //!< traversal in progress
        uint64_t last_hit = 0;                    //!< recency (tick_ stamp)
        uint64_t hits = 0; //!< predictions served (collect() matches)
    };

    /** Drop the lowest-scoring stream to make room (table at cap). */
    void evictColdest();

    uint64_t tick_ = 0;

    using StreamKey = std::pair<uint64_t, uint64_t>; // (ds, stream)

    struct StreamKeyHash
    {
        size_t operator()(const StreamKey &k) const noexcept
        {
            return std::hash<uint64_t>{}(k.first * 0x9e3779b97f4a7c15ULL ^
                                         k.second);
        }
    };

    std::unordered_map<StreamKey, Run, StreamKeyHash> streams_;
};

} // namespace asymnvm

#endif // ASYMNVM_FRONTEND_PREFETCH_H_
