#ifndef ASYMNVM_NVM_NVM_DEVICE_H_
#define ASYMNVM_NVM_NVM_DEVICE_H_

/**
 * @file
 * Byte-addressable NVM device emulation.
 *
 * Substitutes for the Intel Optane DC PMM modules of the paper's back-end
 * (Section 9.1). The emulation preserves the property the framework's
 * crash-consistency machinery actually depends on: *which bytes survive a
 * crash*. Writes are staged in a durability journal until persist() is
 * called; crash() rolls back everything still volatile, and crashPartial()
 * keeps only a prefix of the staged writes — modeling a power failure in
 * the middle of a sequence of media writes (e.g. a torn RDMA_Write that
 * only the transaction checksum can detect, Section 4.2).
 *
 * The device itself charges no virtual time; callers (the verbs layer, the
 * back-end CPU model) account latency so that local and remote access can
 * be priced differently.
 */

#include <cstdint>
#include <mutex>
#include <shared_mutex>
#include <vector>

namespace asymnvm {

/** One NVM DIMM set attached to a back-end (or mirror) node. */
class NvmDevice
{
  public:
    /** @param size Capacity in bytes. */
    explicit NvmDevice(uint64_t size);

    uint64_t size() const { return mem_.size(); }

    /** Read @p len bytes at @p off into @p dst (sees staged writes). */
    void read(uint64_t off, void *dst, size_t len) const;

    /** Stage a write of @p len bytes; durable only after persist(). */
    void write(uint64_t off, const void *src, size_t len);

    /** Atomic 8-byte read (RDMA guarantees 64-bit atomicity, §3.3). */
    uint64_t read64(uint64_t off) const;

    /** Atomic 8-byte write, immediately durable (RDMA atomic verb). */
    void write64Atomic(uint64_t off, uint64_t v);

    /**
     * Atomic compare-and-swap on an 8-byte word; immediately durable.
     * @return The previous value (equals @p expected on success).
     */
    uint64_t compareAndSwap64(uint64_t off, uint64_t expected,
                              uint64_t desired);

    /** Atomic fetch-and-add on an 8-byte word; immediately durable. */
    uint64_t fetchAdd64(uint64_t off, uint64_t delta);

    /** Make all staged writes durable (persist barrier / DMA complete). */
    void persist();

    /** Number of writes staged since the last persist(). */
    size_t pendingWrites() const;

    /**
     * Simulate a power failure: every staged (non-durable) write is rolled
     * back, restoring the last persisted image.
     */
    void crash();

    /**
     * Simulate a power failure where only the first @p keep_writes staged
     * writes reached the media; the rest are rolled back.
     */
    void crashPartial(size_t keep_writes);

    /**
     * crashPartial at single-write granularity: stage a write of @p len
     * bytes as the DMA would, then lose power so that only the first
     * @p keep_bytes survive durably — the tail rolls back to the previous
     * image. Used by the verbs layer to model a torn in-flight RDMA_Write
     * (Section 4.2). Byte-granular so crash sweeps can enumerate every
     * 64-byte tear prefix deterministically.
     */
    void applyTornWrite(uint64_t off, const void *src, size_t len,
                        size_t keep_bytes);

    /** Total bytes written over the device's lifetime (wear statistics). */
    uint64_t bytesWritten() const { return bytes_written_; }

  private:
    struct Pending
    {
        uint64_t off;
        std::vector<uint8_t> old_bytes;
    };

    std::vector<uint8_t> mem_;
    std::vector<Pending> pending_;
    uint64_t bytes_written_ = 0;
    mutable std::shared_mutex mu_;
};

} // namespace asymnvm

#endif // ASYMNVM_NVM_NVM_DEVICE_H_
