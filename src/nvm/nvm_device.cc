#include "nvm/nvm_device.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>

namespace asymnvm {

NvmDevice::NvmDevice(uint64_t size) : mem_(size, 0)
{
    if (size < 4096)
        throw std::invalid_argument("NvmDevice: size too small");
}

void
NvmDevice::read(uint64_t off, void *dst, size_t len) const
{
    std::shared_lock lock(mu_);
    assert(off + len <= mem_.size());
    std::memcpy(dst, mem_.data() + off, len);
}

void
NvmDevice::write(uint64_t off, const void *src, size_t len)
{
    std::unique_lock lock(mu_);
    assert(off + len <= mem_.size());
    Pending p;
    p.off = off;
    p.old_bytes.assign(mem_.begin() + off, mem_.begin() + off + len);
    pending_.push_back(std::move(p));
    std::memcpy(mem_.data() + off, src, len);
    bytes_written_ += len;
}

uint64_t
NvmDevice::read64(uint64_t off) const
{
    uint64_t v;
    read(off, &v, sizeof(v));
    return v;
}

void
NvmDevice::write64Atomic(uint64_t off, uint64_t v)
{
    std::unique_lock lock(mu_);
    assert(off + sizeof(v) <= mem_.size());
    std::memcpy(mem_.data() + off, &v, sizeof(v));
    bytes_written_ += sizeof(v);
    // Atomic verbs are immediately durable; no journal entry.
}

uint64_t
NvmDevice::compareAndSwap64(uint64_t off, uint64_t expected,
                            uint64_t desired)
{
    std::unique_lock lock(mu_);
    assert(off + 8 <= mem_.size());
    uint64_t cur;
    std::memcpy(&cur, mem_.data() + off, 8);
    if (cur == expected) {
        std::memcpy(mem_.data() + off, &desired, 8);
        bytes_written_ += 8;
    }
    return cur;
}

uint64_t
NvmDevice::fetchAdd64(uint64_t off, uint64_t delta)
{
    std::unique_lock lock(mu_);
    assert(off + 8 <= mem_.size());
    uint64_t cur;
    std::memcpy(&cur, mem_.data() + off, 8);
    const uint64_t next = cur + delta;
    std::memcpy(mem_.data() + off, &next, 8);
    bytes_written_ += 8;
    return cur;
}

void
NvmDevice::persist()
{
    std::unique_lock lock(mu_);
    pending_.clear();
}

size_t
NvmDevice::pendingWrites() const
{
    std::shared_lock lock(mu_);
    return pending_.size();
}

void
NvmDevice::crash()
{
    crashPartial(0);
}

void
NvmDevice::crashPartial(size_t keep_writes)
{
    std::unique_lock lock(mu_);
    // Roll back in reverse order so overlapping writes restore correctly.
    while (pending_.size() > keep_writes) {
        const Pending &p = pending_.back();
        std::memcpy(mem_.data() + p.off, p.old_bytes.data(),
                    p.old_bytes.size());
        pending_.pop_back();
    }
    pending_.clear(); // the surviving prefix is now durable
}

void
NvmDevice::applyTornWrite(uint64_t off, const void *src, size_t len,
                          size_t keep_bytes)
{
    std::unique_lock lock(mu_);
    assert(off + len <= mem_.size());
    keep_bytes = std::min(keep_bytes, len);
    // Stage the full write as the in-flight DMA would...
    Pending p;
    p.off = off;
    p.old_bytes.assign(mem_.begin() + off, mem_.begin() + off + len);
    std::memcpy(mem_.data() + off, src, len);
    bytes_written_ += len;
    // ...then power fails mid-transfer: the tail beyond keep_bytes rolls
    // back and the surviving prefix is immediately durable (no journal
    // entry remains, so a later crash() cannot undo it).
    std::memcpy(mem_.data() + off + keep_bytes, p.old_bytes.data() + keep_bytes,
                len - keep_bytes);
}

} // namespace asymnvm
