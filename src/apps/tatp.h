#ifndef ASYMNVM_APPS_TATP_H_
#define ASYMNVM_APPS_TATP_H_

/**
 * @file
 * TATP (Telecommunication Application Transaction Processing) benchmark
 * (Section 9.2, Table 3), on the AsymNVM framework with B+tree indexes —
 * the paper uses BPT as TATP's index structure.
 *
 * The four tables are indexed by composite keys packed into 64 bits:
 *   subscriber:        s_id
 *   access_info:       s_id << 8  | ai_type   (1..4)
 *   special_facility:  s_id << 8  | sf_type   (1..4)
 *   call_forwarding:   s_id << 16 | sf_type << 8 | start_hour
 *
 * The standard transaction mix is 80% read / 20% write:
 *   GetSubscriberData 35, GetNewDestination 10, GetAccessData 35,
 *   UpdateSubscriberData 2, UpdateLocation 14,
 *   InsertCallForwarding 2, DeleteCallForwarding 2.
 */

#include "common/rand.h"
#include "ds/bptree.h"

namespace asymnvm {

/** TATP transaction types. */
enum class TatpTx : uint8_t
{
    GetSubscriberData,
    GetNewDestination,
    GetAccessData,
    UpdateSubscriberData,
    UpdateLocation,
    InsertCallForwarding,
    DeleteCallForwarding,
};

/** Per-transaction-type execution counters. */
struct TatpStats
{
    uint64_t committed = 0;
    uint64_t not_found = 0; //!< TATP expects a share of misses
};

/** The TATP application. */
class Tatp
{
  public:
    Tatp() = default;

    /** Create and populate the four tables for @p subscribers. */
    static Status create(FrontendSession &s, NodeId backend,
                         uint64_t subscribers, Tatp *out);

    /** Open existing tables. */
    static Status open(FrontendSession &s, NodeId backend, Tatp *out);

    // --- the seven transactions ---
    Status getSubscriberData(uint64_t s_id, Value *out);
    Status getNewDestination(uint64_t s_id, uint8_t sf_type,
                             uint8_t start_hour, Value *out);
    Status getAccessData(uint64_t s_id, uint8_t ai_type, Value *out);
    Status updateSubscriberData(uint64_t s_id, uint8_t sf_type,
                                uint64_t bit, uint64_t data);
    Status updateLocation(uint64_t s_id, uint64_t vlr_location);
    Status insertCallForwarding(uint64_t s_id, uint8_t sf_type,
                                uint8_t start_hour, const Value &numberx);
    Status deleteCallForwarding(uint64_t s_id, uint8_t sf_type,
                                uint8_t start_hour);

    /** Run one transaction of the standard mix. */
    Status runOne(Rng &rng);

    uint64_t subscriberCount() const { return subscribers_; }
    const TatpStats &stats() const { return stats_; }

    static constexpr Key subscriberKey(uint64_t s_id) { return s_id; }
    static constexpr Key accessKey(uint64_t s_id, uint8_t ai_type)
    {
        return (s_id << 8) | ai_type;
    }
    static constexpr Key facilityKey(uint64_t s_id, uint8_t sf_type)
    {
        return (s_id << 8) | sf_type;
    }
    static constexpr Key forwardingKey(uint64_t s_id, uint8_t sf_type,
                                       uint8_t start_hour)
    {
        return (s_id << 16) | (static_cast<uint64_t>(sf_type) << 8) |
               start_hour;
    }

  private:
    BpTree subscriber_;
    BpTree access_info_;
    BpTree special_facility_;
    BpTree call_forwarding_;
    uint64_t subscribers_ = 0;
    TatpStats stats_;
};

} // namespace asymnvm

#endif // ASYMNVM_APPS_TATP_H_
