#include "apps/smallbank.h"

namespace asymnvm {

namespace {
constexpr int64_t kInitialBalance = 100;
constexpr int64_t kOverdraftPenalty = 1;
} // namespace

Status
SmallBank::create(FrontendSession &s, NodeId backend, uint64_t accounts,
                  SmallBank *out)
{
    Status st = HashTable::create(s, backend, "smallbank/accounts",
                                  accounts * 2, &out->table_);
    if (!ok(st))
        return st;
    out->accounts_ = accounts;
    Account init{kInitialBalance, kInitialBalance};
    for (uint64_t a = 1; a <= accounts; ++a) {
        st = out->table_.put(a, init.toValue());
        if (!ok(st))
            return st;
    }
    // The account count is recoverable from the index's own element
    // count (aux words 0-2 belong to the HashTable implementation).
    return s.flushAll();
}

Status
SmallBank::open(FrontendSession &s, NodeId backend, SmallBank *out)
{
    const Status st =
        HashTable::open(s, backend, "smallbank/accounts", &out->table_);
    if (!ok(st))
        return st;
    out->accounts_ = out->table_.size();
    return Status::Ok;
}

Status
SmallBank::readAccount(uint64_t acct, Account *a)
{
    Value v;
    const Status st = table_.get(acct, &v);
    if (!ok(st))
        return st;
    *a = Account::fromValue(v);
    return Status::Ok;
}

Status
SmallBank::writeAccount(uint64_t acct, const Account &a)
{
    return table_.put(acct, a.toValue());
}

Status
SmallBank::balance(uint64_t acct, int64_t *total)
{
    Account a;
    const Status st = readAccount(acct, &a);
    if (!ok(st))
        return st;
    *total = a.savings + a.checking;
    return Status::Ok;
}

Status
SmallBank::depositChecking(uint64_t acct, int64_t amount)
{
    if (amount < 0)
        return Status::InvalidArgument;
    Account a;
    Status st = readAccount(acct, &a);
    if (!ok(st))
        return st;
    a.checking += amount;
    return writeAccount(acct, a);
}

Status
SmallBank::transactSavings(uint64_t acct, int64_t amount)
{
    Account a;
    Status st = readAccount(acct, &a);
    if (!ok(st))
        return st;
    if (a.savings + amount < 0)
        return Status::InvalidArgument; // insufficient funds
    a.savings += amount;
    return writeAccount(acct, a);
}

Status
SmallBank::amalgamate(uint64_t from, uint64_t to)
{
    if (from == to)
        return Status::InvalidArgument;
    Account a, b;
    Status st = readAccount(from, &a);
    if (!ok(st))
        return st;
    st = readAccount(to, &b);
    if (!ok(st))
        return st;
    b.checking += a.savings + a.checking;
    a.savings = 0;
    a.checking = 0;
    st = writeAccount(from, a);
    if (!ok(st))
        return st;
    return writeAccount(to, b);
}

Status
SmallBank::writeCheck(uint64_t acct, int64_t amount)
{
    Account a;
    Status st = readAccount(acct, &a);
    if (!ok(st))
        return st;
    if (a.savings + a.checking < amount)
        a.checking -= amount + kOverdraftPenalty; // overdraft penalty
    else
        a.checking -= amount;
    return writeAccount(acct, a);
}

Status
SmallBank::sendPayment(uint64_t from, uint64_t to, int64_t amount)
{
    if (from == to || amount < 0)
        return Status::InvalidArgument;
    Account a, b;
    Status st = readAccount(from, &a);
    if (!ok(st))
        return st;
    if (a.checking < amount)
        return Status::InvalidArgument;
    st = readAccount(to, &b);
    if (!ok(st))
        return st;
    a.checking -= amount;
    b.checking += amount;
    st = writeAccount(from, a);
    if (!ok(st))
        return st;
    return writeAccount(to, b);
}

Status
SmallBank::runOne(Rng &rng)
{
    const uint64_t a = 1 + rng.nextBounded(accounts_);
    uint64_t b = 1 + rng.nextBounded(accounts_);
    if (b == a)
        b = (b % accounts_) + 1;
    const int64_t amount = 1 + static_cast<int64_t>(rng.nextBounded(50));
    // Standard mix: 15/15/15/15/25/15.
    const uint64_t dice = rng.nextBounded(100);
    Status st;
    if (dice < 15) {
        int64_t total;
        st = balance(a, &total);
    } else if (dice < 30) {
        st = depositChecking(a, amount);
    } else if (dice < 45) {
        st = transactSavings(a, amount);
    } else if (dice < 60) {
        st = amalgamate(a, b);
    } else if (dice < 85) {
        st = writeCheck(a, amount);
    } else {
        st = sendPayment(a, b, amount);
    }
    // Business rejections (insufficient funds) are successful runs.
    return st == Status::InvalidArgument ? Status::Ok : st;
}

Status
SmallBank::totalAssets(int64_t *out)
{
    int64_t sum = 0;
    for (uint64_t a = 1; a <= accounts_; ++a) {
        Account acc;
        const Status st = readAccount(a, &acc);
        if (!ok(st))
            return st;
        sum += acc.savings + acc.checking;
    }
    *out = sum;
    return Status::Ok;
}

} // namespace asymnvm
