#include "apps/tatp.h"

namespace asymnvm {

Status
Tatp::create(FrontendSession &s, NodeId backend, uint64_t subscribers,
             Tatp *out)
{
    Status st = BpTree::create(s, backend, "tatp/subscriber",
                               &out->subscriber_);
    if (!ok(st))
        return st;
    st = BpTree::create(s, backend, "tatp/access_info",
                        &out->access_info_);
    if (!ok(st))
        return st;
    st = BpTree::create(s, backend, "tatp/special_facility",
                        &out->special_facility_);
    if (!ok(st))
        return st;
    st = BpTree::create(s, backend, "tatp/call_forwarding",
                        &out->call_forwarding_);
    if (!ok(st))
        return st;
    out->subscribers_ = subscribers;

    Rng rng(subscribers ^ 0x7a7);
    for (uint64_t id = 1; id <= subscribers; ++id) {
        st = out->subscriber_.insert(subscriberKey(id),
                                     Value::ofU64(id * 131));
        if (!ok(st))
            return st;
        // TATP: each subscriber has 1-4 access-info and special-facility
        // rows; call-forwarding rows are sparse.
        const uint32_t nai = 1 + rng.nextBounded(4);
        for (uint8_t t = 1; t <= nai; ++t) {
            st = out->access_info_.insert(accessKey(id, t),
                                          Value::ofU64(id + t));
            if (!ok(st))
                return st;
        }
        const uint32_t nsf = 1 + rng.nextBounded(4);
        for (uint8_t t = 1; t <= nsf; ++t) {
            st = out->special_facility_.insert(facilityKey(id, t),
                                               Value::ofU64(1)); // active
            if (!ok(st))
                return st;
            if (rng.nextBool(0.25)) {
                st = out->call_forwarding_.insert(
                    forwardingKey(id, t, 8), Value::ofString("555-0100"));
                if (!ok(st))
                    return st;
            }
        }
    }
    // Persist the subscriber count for open(). (BpTree uses aux1 for
    // its element count; aux2 is free for the application. aux3 is
    // reserved by the framework for the writer generation.)
    st = s.writeAux(out->subscriber_.id(), backend, 2, subscribers);
    if (!ok(st))
        return st;
    return s.flushAll();
}

Status
Tatp::open(FrontendSession &s, NodeId backend, Tatp *out)
{
    Status st = BpTree::open(s, backend, "tatp/subscriber",
                             &out->subscriber_);
    if (!ok(st))
        return st;
    st = BpTree::open(s, backend, "tatp/access_info",
                      &out->access_info_);
    if (!ok(st))
        return st;
    st = BpTree::open(s, backend, "tatp/special_facility",
                      &out->special_facility_);
    if (!ok(st))
        return st;
    st = BpTree::open(s, backend, "tatp/call_forwarding",
                      &out->call_forwarding_);
    if (!ok(st))
        return st;
    return s.readAux(out->subscriber_.id(), backend, 2,
                     &out->subscribers_);
}

Status
Tatp::getSubscriberData(uint64_t s_id, Value *out)
{
    return subscriber_.find(subscriberKey(s_id), out);
}

Status
Tatp::getNewDestination(uint64_t s_id, uint8_t sf_type,
                        uint8_t start_hour, Value *out)
{
    Value facility;
    Status st = special_facility_.find(facilityKey(s_id, sf_type),
                                       &facility);
    if (!ok(st))
        return st;
    if (facility.asU64() == 0)
        return Status::NotFound; // facility inactive
    return call_forwarding_.find(forwardingKey(s_id, sf_type, start_hour),
                                 out);
}

Status
Tatp::getAccessData(uint64_t s_id, uint8_t ai_type, Value *out)
{
    return access_info_.find(accessKey(s_id, ai_type), out);
}

Status
Tatp::updateSubscriberData(uint64_t s_id, uint8_t sf_type, uint64_t bit,
                           uint64_t data)
{
    Status st = subscriber_.insert(subscriberKey(s_id),
                                   Value::ofU64(bit));
    if (!ok(st))
        return st;
    return special_facility_.insert(facilityKey(s_id, sf_type),
                                    Value::ofU64(data));
}

Status
Tatp::updateLocation(uint64_t s_id, uint64_t vlr_location)
{
    return subscriber_.insert(subscriberKey(s_id),
                              Value::ofU64(vlr_location));
}

Status
Tatp::insertCallForwarding(uint64_t s_id, uint8_t sf_type,
                           uint8_t start_hour, const Value &numberx)
{
    return call_forwarding_.insert(
        forwardingKey(s_id, sf_type, start_hour), numberx);
}

Status
Tatp::deleteCallForwarding(uint64_t s_id, uint8_t sf_type,
                           uint8_t start_hour)
{
    return call_forwarding_.erase(
        forwardingKey(s_id, sf_type, start_hour));
}

Status
Tatp::runOne(Rng &rng)
{
    const uint64_t s_id = 1 + rng.nextBounded(subscribers_);
    const uint8_t sf_type = static_cast<uint8_t>(1 + rng.nextBounded(4));
    const uint8_t ai_type = static_cast<uint8_t>(1 + rng.nextBounded(4));
    const uint8_t hour = static_cast<uint8_t>(8 * rng.nextBounded(3));
    Value v;
    Status st = Status::Ok;
    const uint64_t dice = rng.nextBounded(100);
    if (dice < 35) {
        st = getSubscriberData(s_id, &v);
    } else if (dice < 45) {
        st = getNewDestination(s_id, sf_type, hour, &v);
    } else if (dice < 80) {
        st = getAccessData(s_id, ai_type, &v);
    } else if (dice < 82) {
        st = updateSubscriberData(s_id, sf_type, rng.next(), rng.next());
    } else if (dice < 96) {
        st = updateLocation(s_id, rng.next());
    } else if (dice < 98) {
        st = insertCallForwarding(s_id, sf_type, hour,
                                  Value::ofString("555-0199"));
    } else {
        st = deleteCallForwarding(s_id, sf_type, hour);
    }
    if (st == Status::NotFound) {
        // TATP defines a fraction of transactions to miss by design.
        ++stats_.not_found;
        return Status::Ok;
    }
    if (ok(st))
        ++stats_.committed;
    return st;
}

} // namespace asymnvm
