#ifndef ASYMNVM_APPS_SMALLBANK_H_
#define ASYMNVM_APPS_SMALLBANK_H_

/**
 * @file
 * SmallBank transaction benchmark (Section 9.2, Table 3), implemented on
 * the AsymNVM framework with a HashTable index — matching the paper's
 * choice of index structure for SmallBank.
 *
 * Accounts hold a savings and a checking balance packed in one 64-byte
 * value. The six standard transaction types are implemented; the default
 * mix follows the H-Store SmallBank specification the paper cites
 * (heavier on writeCheck, equal shares elsewhere).
 */

#include "common/rand.h"
#include "ds/hash_table.h"

namespace asymnvm {

/** Balances of one account, packed into a Value. */
struct Account
{
    int64_t savings;
    int64_t checking;

    Value toValue() const
    {
        Value v;
        std::memcpy(v.bytes.data(), this, sizeof(Account));
        return v;
    }
    static Account fromValue(const Value &v)
    {
        Account a;
        std::memcpy(&a, v.bytes.data(), sizeof(Account));
        return a;
    }
};

/** SmallBank transaction types. */
enum class BankTx : uint8_t
{
    Balance,
    DepositChecking,
    TransactSavings,
    Amalgamate,
    WriteCheck,
    SendPayment,
};

/** The SmallBank application. */
class SmallBank
{
  public:
    SmallBank() = default;

    /** Create the account table and load @p accounts with balance 100/100. */
    static Status create(FrontendSession &s, NodeId backend,
                         uint64_t accounts, SmallBank *out);

    /** Open an existing bank. */
    static Status open(FrontendSession &s, NodeId backend, SmallBank *out);

    // --- the six transactions ---
    Status balance(uint64_t acct, int64_t *total);
    Status depositChecking(uint64_t acct, int64_t amount);
    Status transactSavings(uint64_t acct, int64_t amount);
    Status amalgamate(uint64_t from, uint64_t to);
    Status writeCheck(uint64_t acct, int64_t amount);
    Status sendPayment(uint64_t from, uint64_t to, int64_t amount);

    /** Run one randomly chosen transaction of the standard mix. */
    Status runOne(Rng &rng);

    /** Sum of all balances (for the conservation invariant). */
    Status totalAssets(int64_t *out);

    uint64_t accountCount() const { return accounts_; }
    HashTable &table() { return table_; }

  private:
    Status readAccount(uint64_t acct, Account *a);
    Status writeAccount(uint64_t acct, const Account &a);

    HashTable table_;
    uint64_t accounts_ = 0;
};

} // namespace asymnvm

#endif // ASYMNVM_APPS_SMALLBANK_H_
