#ifndef ASYMNVM_SIM_FAULT_H_
#define ASYMNVM_SIM_FAULT_H_

/**
 * @file
 * Transient-fault injection for the verbs layer.
 *
 * FailureInjector (failure.h) models *fail-stop*: one torn write and the
 * device is down until recovery. Real disaggregated-NVM deployments are
 * dominated instead by transient conditions — lost or delayed verb
 * completions, queue pairs dropping into the error state, and "gray"
 * nodes that keep serving but slowly. FaultModel injects exactly those,
 * per target node, deterministically under a seed, so the retry/backoff
 * policy in src/rdma and the failover protocol in src/frontend can be
 * soaked without giving up reproducibility.
 *
 * The model is consulted once per verb and returns a FaultAction:
 *
 *  - drop_before: the verb never executes; the issuing session times out.
 *  - drop_after:  the verb executes but its completion is lost — only
 *    legal for (idempotent) writes, where the retry lands the same bytes
 *    again. This is also how *duplicated* work enters the system: the
 *    retried write, or the RPC resend it forces, re-delivers a payload
 *    the back-end already has, which the seq-dedup layers must absorb.
 *  - qp_error:    the queue pair transitions to the error state; every
 *    later verb on that endpoint fails until the endpoint resets it.
 *  - delay_ns:    the completion is late by delay_ns of virtual time.
 *  - slow_ns:     gray failure — while armed, every verb to this node
 *    pays extra service time (the node is alive but degraded).
 *
 * Decisions consume the model's private PRNG in call order, so a
 * single-threaded drive of a seeded schedule is fully deterministic.
 */

#include <atomic>
#include <cstdint>

#include "common/rand.h"

namespace asymnvm {

/** Verb classes the fault model distinguishes. */
enum class FaultVerb : uint8_t
{
    Read,
    Write,  //!< synchronous or posted write (idempotent payload)
    Atomic, //!< CAS / fetch-add / atomic 8-byte access
};

/** Per-verb injection probabilities and magnitudes. All off by default. */
struct FaultConfig
{
    double drop_rate = 0.0;     //!< P(completion lost) per verb
    /** Among drops of writes, P(the payload landed before the loss). */
    double drop_after_frac = 0.5;
    double delay_rate = 0.0;    //!< P(completion delayed) per verb
    uint64_t delay_ns = 4000;   //!< magnitude of an injected delay
    double qp_error_rate = 0.0; //!< P(QP error transition) per verb
    /** Gray failure: extra per-verb service time while slow_until_ns. */
    uint64_t slow_extra_ns = 0;

    bool enabled() const
    {
        return drop_rate > 0 || delay_rate > 0 || qp_error_rate > 0 ||
               slow_extra_ns > 0;
    }
};

/** What the transport must do about one verb. */
struct FaultAction
{
    bool drop = false;       //!< completion lost; caller times out
    bool drop_after = false; //!< payload executed before the loss
    bool qp_error = false;   //!< QP drops to the error state
    uint64_t delay_ns = 0;   //!< late completion
    uint64_t slow_ns = 0;    //!< gray-failure service-time penalty
};

/** Seeded transient-fault source attached to one back-end target. */
class FaultModel
{
  public:
    FaultModel() = default;

    /** Arm (or re-arm) the model; resets the PRNG to @p seed. */
    void configure(const FaultConfig &cfg, uint64_t seed)
    {
        cfg_ = cfg;
        rng_ = Rng(seed);
        armed_ = cfg.enabled();
    }

    /** Disarm all transient injection (gray window included). */
    void disarm()
    {
        armed_ = false;
        slow_until_ns_ = 0;
    }

    /**
     * Gray failure: until virtual time @p until_ns every verb to this
     * node pays @p extra_ns of additional service time.
     */
    void slowDownUntil(uint64_t until_ns, uint64_t extra_ns)
    {
        slow_until_ns_ = until_ns;
        cfg_.slow_extra_ns = extra_ns;
        armed_ = true;
    }

    bool armed() const { return armed_; }
    const FaultConfig &config() const { return cfg_; }
    uint64_t injectedFaults() const { return injected_; }

    /** Decide the fate of one verb issued at virtual time @p now_ns. */
    FaultAction onVerb(FaultVerb kind, uint64_t now_ns)
    {
        FaultAction a;
        if (!armed_)
            return a;
        if (slow_until_ns_ > now_ns && cfg_.slow_extra_ns > 0) {
            a.slow_ns = cfg_.slow_extra_ns;
            ++injected_;
        }
        if (cfg_.qp_error_rate > 0 && rng_.nextBool(cfg_.qp_error_rate)) {
            a.qp_error = true;
            ++injected_;
            return a;
        }
        if (cfg_.drop_rate > 0 && rng_.nextBool(cfg_.drop_rate)) {
            a.drop = true;
            // Only write payloads may land before the completion is
            // lost: a dropped read/atomic simply never happened.
            a.drop_after = kind == FaultVerb::Write &&
                           rng_.nextBool(cfg_.drop_after_frac);
            ++injected_;
            return a;
        }
        if (cfg_.delay_rate > 0 && rng_.nextBool(cfg_.delay_rate)) {
            a.delay_ns = cfg_.delay_ns;
            ++injected_;
        }
        return a;
    }

  private:
    FaultConfig cfg_;
    Rng rng_;
    bool armed_ = false;
    uint64_t slow_until_ns_ = 0;
    uint64_t injected_ = 0;
};

} // namespace asymnvm

#endif // ASYMNVM_SIM_FAULT_H_
