#ifndef ASYMNVM_SIM_NIC_QOS_H_
#define ASYMNVM_SIM_NIC_QOS_H_

/**
 * @file
 * QoS classes and per-QP contention knobs of the shared back-end NIC.
 *
 * Split from sim/nic.h so configuration surfaces (BackendConfig) can
 * name them without pulling in the NicModel implementation; see
 * sim/nic.h for the model the knobs drive.
 */

#include <cstdint>

namespace asymnvm {

/** QoS class of a verb arriving at the shared back-end NIC. */
enum class VerbClass : uint8_t
{
    Foreground = 0, //!< session critical path (data structure ops)
    Background = 1, //!< replication shipping, recovery replay, resync
};

/** Per-QP contention / QoS arbitration knobs of one back-end NIC. */
struct NicQosConfig
{
    /**
     * Master switch (the `nic_cross_session_merge` ablation flag): off
     * reproduces the legacy cumulative-utilization model bit-identically;
     * on enables the per-QP arrival tracks, doorbell merging and the
     * two-class arbiter.
     */
    bool cross_session_merge = false;
    /**
     * Doorbells from different QPs of the same class coalesce into one
     * NIC arrival burst (joiners skip arrival_overhead_ns) when they
     * land within this window of the previous same-class arrival, or
     * while same-class backlog from other QPs is still draining. 0
     * disables aggregation entirely while keeping the per-QP contention
     * model — the merge-off baseline of the session sweep.
     */
    uint64_t merge_window_ns = 600;
    /** Per-doorbell NIC arrival processing (MMIO + WQE fetch setup). */
    uint64_t arrival_overhead_ns = 240;
    /**
     * Background-class share of NIC WQE slots, in percent. 100 = no
     * arbitration (background backlog drains FIFO ahead of foreground —
     * the storm-collapse baseline); lower values bound the background
     * WQEs served ahead of a foreground burst and pace background
     * bursts to that fraction of line rate.
     */
    uint32_t bg_share_pct = 100;
};

} // namespace asymnvm

#endif // ASYMNVM_SIM_NIC_QOS_H_
