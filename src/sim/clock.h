#ifndef ASYMNVM_SIM_CLOCK_H_
#define ASYMNVM_SIM_CLOCK_H_

/**
 * @file
 * Per-session virtual clock.
 *
 * The reproduction measures performance in *virtual time*: every simulated
 * hardware action (NVM access, DRAM access, RDMA verb, NIC queueing delay)
 * advances the clock of the session that performed it by the configured
 * cost. Throughput figures are then ops / virtual seconds, which makes the
 * shape of the paper's results reproducible and deterministic regardless
 * of host machine speed.
 */

#include <cstdint>

namespace asymnvm {

/** A monotonically advancing virtual clock, in nanoseconds. */
class SimClock
{
  public:
    /** Current virtual time in nanoseconds. */
    uint64_t now() const { return now_ns_; }

    /** Advance by @p delta_ns nanoseconds of simulated work. */
    void advance(uint64_t delta_ns) { now_ns_ += delta_ns; }

    /**
     * Advance to at least @p t_ns (used when waiting on a shared resource
     * whose next-free time is ahead of this session's clock).
     */
    void advanceTo(uint64_t t_ns)
    {
        if (t_ns > now_ns_)
            now_ns_ = t_ns;
    }

    /** Reset to zero (start of a measurement interval). */
    void reset() { now_ns_ = 0; }

  private:
    uint64_t now_ns_ = 0;
};

} // namespace asymnvm

#endif // ASYMNVM_SIM_CLOCK_H_
