#ifndef ASYMNVM_SIM_NIC_H_
#define ASYMNVM_SIM_NIC_H_

/**
 * @file
 * Shared back-end RNIC contention model.
 *
 * Section 3.2 observes that although InfiniBand bandwidth is comparable
 * to NVM, the NIC "cannot provide enough IOPS for fine-grained data
 * structure accesses". Two contention models live here, selected by
 * NicQosConfig::cross_session_merge:
 *
 * LEGACY (default, bit-identical to the original model): the back-end
 * NIC is a single server with a fixed per-verb service time; the
 * queueing delay each verb experiences follows the M/D/1 mean-wait
 * formula computed from the NIC's *cumulative* utilization — the ratio
 * of aggregate verb service time (across every session) to the maximum
 * virtual time any session has reached since the last reset. A ratio is
 * robust both to the skew between concurrently running sessions'
 * virtual clocks and to host thread scheduling, but it collapses every
 * session's arrival process into one scalar: a verb's wait does not
 * depend on *who else* is on the wire right now.
 *
 * PER-QP (cross_session_merge on): every session/queue-pair keeps its
 * own arrival track {last doorbell time, drain horizon}, and the wait a
 * burst sees is computed from the OTHER tracks' undrained backlog:
 *
 *  - Round-robin WQE drain across same-class QPs: before a burst of n
 *    WQEs completes, each other active QP is served at most n WQE slots
 *    (its backlog, capped at n) — a long burst from one session cannot
 *    starve a short one, but k concurrent bursts of n each cost every
 *    session ~(k-1)*n service times, which is exactly the IOPS ceiling
 *    the multi-front-end figures hinge on.
 *  - Cross-session doorbell aggregation: doorbells from *different* QPs
 *    of the same class that land within merge_window_ns coalesce into
 *    one NIC arrival burst. A merged joiner skips the per-doorbell
 *    arrival processing overhead (PCIe MMIO + WQE fetch scheduling),
 *    both in its own wait and in the backlog other sessions see — the
 *    win that makes many-session scaling sub-linear instead of flat.
 *  - Two-class QoS arbitration: verbs are tagged Foreground (session
 *    critical path) or Background (mirror replication shipping,
 *    recovery replay). The arbiter bounds how much background backlog
 *    may drain ahead of a foreground burst (bg_share_pct of its WQE
 *    slots) and paces background bursts to that share of line rate, so
 *    foreground tail latency holds under a replication storm while the
 *    background class still makes proportional progress.
 *
 * Virtual clocks are per-session; the per-QP model compares timestamps
 * across sessions, which is meaningful because the multi-session
 * harnesses interleave sessions at operation granularity (clocks stay
 * in rough lockstep). The legacy scalar model remains the default for
 * exactly this robustness reason — and as the ablation baseline.
 */

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "common/stats.h"
#include "sim/nic_qos.h"

namespace asymnvm {

/** One back-end's RNIC: a shared, IOPS-bounded verb server. */
class NicModel
{
  public:
    /** @param verb_service_ns Service time per verb (1 / max IOPS). */
    explicit NicModel(uint64_t verb_service_ns = 120)
        : service_ns_(verb_service_ns)
    {}

    /** Install the per-QP/QoS configuration (see NicQosConfig). */
    void setQos(const NicQosConfig &q) { qos_ = q; }
    const NicQosConfig &qos() const { return qos_; }
    bool qosEnabled() const { return qos_.cross_session_merge; }

    /**
     * Account one verb issued at session-local time @p now_ns from
     * queue pair @p qp with class @p cls and return the modeled
     * queueing delay (0 when the NIC is mostly idle).
     */
    uint64_t reserve(uint64_t now_ns, uint64_t qp = 0,
                     VerbClass cls = VerbClass::Foreground)
    {
        return reserveBatch(1, now_ns, qp, cls);
    }

    /**
     * Account @p n verbs that arrive as one doorbell-batched WQE chain at
     * session-local time @p now_ns. The chain occupies the NIC for n
     * service times (it still bounds aggregate IOPS) but enters the queue
     * as a single arrival, so the issuing session waits at most one
     * queueing delay — the cost structure that makes doorbell batching
     * worthwhile on real RNICs. In the per-QP model the delay depends on
     * the OTHER queue pairs' in-flight bursts (see file comment).
     */
    uint64_t reserveBatch(uint64_t n, uint64_t now_ns, uint64_t qp = 0,
                          VerbClass cls = VerbClass::Foreground)
    {
        if (n == 0)
            return 0;
        verbs_.add(n);
        const uint64_t add = n * service_ns_;
        const uint64_t total =
            busy_total_.fetch_add(add, std::memory_order_relaxed) + add;
        busy_ns_.add(add);

        uint64_t maxn = max_now_ns_.load(std::memory_order_relaxed);
        while (now_ns > maxn &&
               !max_now_ns_.compare_exchange_weak(
                   maxn, now_ns, std::memory_order_relaxed)) {
        }
        maxn = std::max(maxn, now_ns);

        if (qos_.cross_session_merge)
            return reserveContended(n, now_ns, qp, cls);

        // Legacy scalar model: cumulative utilization, M/D/1 mean wait.
        uint64_t busy_at = 0, base = 0;
        loadResetEpoch(&busy_at, &base);
        const uint64_t busy = total > busy_at ? total - busy_at : 0;
        const uint64_t span = maxn > base ? maxn - base : 0;
        if (span < 10 * service_ns_)
            return 0; // not enough signal yet
        // Cumulative utilization, capped below saturation.
        const uint64_t ppk =
            std::min<uint64_t>(950, busy * 1000 / span);
        // M/D/1 mean waiting time: W = s * rho / (2 * (1 - rho)).
        return service_ns_ * ppk / (2 * (1000 - ppk));
    }

    /**
     * Account a doorbell-batched read gather: @p n read WQEs launched by
     * one doorbell enter the queue as a single arrival, exactly like
     * reserveBatch, but are additionally counted so benchmarks can report
     * how much of the read traffic arrives pre-batched. @p ops is the
     * number of independent *operations* whose demanded reads the chain
     * multiplexes (pipelined sessions overlap several ops per arrival);
     * gathers with ops > 1 are tracked separately so the arrival stream's
     * op-interleaving is observable at the NIC.
     */
    uint64_t reserveGather(uint64_t n, uint64_t now_ns, uint64_t ops = 1,
                           uint64_t qp = 0,
                           VerbClass cls = VerbClass::Foreground)
    {
        if (n == 0)
            return 0;
        gather_batches_.add(1);
        gather_wqes_.add(n);
        if (ops > 1) {
            multi_op_batches_.add(1);
            multi_op_wqes_.add(n);
        }
        return reserveBatch(n, now_ns, qp, cls);
    }

    uint64_t verbCount() const { return verbs_.get(); }
    uint64_t gatherBatches() const { return gather_batches_.get(); }
    uint64_t gatherWqes() const { return gather_wqes_.get(); }
    /** Gather arrivals multiplexing several in-flight ops' reads. */
    uint64_t multiOpBatches() const { return multi_op_batches_.get(); }
    uint64_t multiOpWqes() const { return multi_op_wqes_.get(); }
    uint64_t busyNs() const { return busy_ns_.get(); }
    uint64_t serviceNs() const { return service_ns_; }

    // ------------------------------------------------------------------
    // Per-QP / per-class observability (populated in the per-QP model)
    // ------------------------------------------------------------------

    /** Doorbell arrivals of @p cls accounted by the per-QP model. */
    uint64_t classBursts(VerbClass cls) const
    {
        return cls_[idx(cls)].bursts.get();
    }
    /** WQEs of @p cls accounted by the per-QP model. */
    uint64_t classWqes(VerbClass cls) const
    {
        return cls_[idx(cls)].wqes.get();
    }
    /** Arrivals of @p cls that coalesced into an earlier doorbell. */
    uint64_t classMerged(VerbClass cls) const
    {
        return cls_[idx(cls)].merged.get();
    }
    /** Cross-QP queueing delay charged to @p cls bursts. */
    uint64_t classQueueWaitNs(VerbClass cls) const
    {
        return cls_[idx(cls)].queue_wait_ns.get();
    }
    /** Pacing delay the arbiter charged to rate-capped background. */
    uint64_t bgThrottleNs() const { return bg_throttle_ns_.get(); }

    /** Per-QP burst/WQE counts (deterministic order; snapshot). */
    std::vector<std::pair<uint64_t, NicQpCounters>> qpSnapshot() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        std::vector<std::pair<uint64_t, NicQpCounters>> out;
        out.reserve(qps_.size());
        for (const auto &[id, t] : qps_)
            out.emplace_back(id, NicQpCounters{t.bursts, t.wqes});
        return out;
    }

    /** Cumulative utilization since the last reset, 0..1. */
    double utilization() const
    {
        uint64_t busy_at = 0, base = 0;
        loadResetEpoch(&busy_at, &base);
        const uint64_t total = busy_total_.load(std::memory_order_relaxed);
        const uint64_t maxn = max_now_ns_.load(std::memory_order_relaxed);
        const uint64_t busy = total > busy_at ? total - busy_at : 0;
        const uint64_t span = maxn > base ? maxn - base : 0;
        return span == 0 ? 0.0
                         : static_cast<double>(busy) /
                               static_cast<double>(span);
    }

    /**
     * Reset counters and rebase utilization at the current time.
     *
     * The {busy-at-reset, base-time} pair is published as ONE seqlock
     * epoch: a reader (utilization(), the legacy reserveBatch path)
     * either sees the pre-reset pair or the post-reset pair, never a
     * mix. The previous implementation zeroed the busy counter and
     * rebased the time in two independent stores, so a reserveBatch
     * racing between them could land service time on the zeroed counter
     * while the span was about to shrink to ~0 — utilization()
     * transiently over-reported by orders of magnitude. Cumulative
     * service time itself is never zeroed (busy_total_ is monotone);
     * reset only moves the subtraction point.
     */
    void resetStats()
    {
        verbs_.reset();
        gather_batches_.reset();
        gather_wqes_.reset();
        multi_op_batches_.reset();
        multi_op_wqes_.reset();
        busy_ns_.reset();
        for (ClassCounters &c : cls_) {
            c.bursts.reset();
            c.wqes.reset();
            c.merged.reset();
            c.queue_wait_ns.reset();
        }
        bg_throttle_ns_.reset();
        {
            std::lock_guard<std::mutex> lock(mu_);
            for (auto &[id, t] : qps_) {
                t.bursts = 0;
                t.wqes = 0;
            }
        }
        // Single epoch-coherent transition: odd seq = reset in progress.
        reset_seq_.fetch_add(1, std::memory_order_acq_rel);
        busy_at_reset_.store(busy_total_.load(std::memory_order_relaxed),
                             std::memory_order_relaxed);
        base_now_ns_.store(max_now_ns_.load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
        reset_seq_.fetch_add(1, std::memory_order_release);
    }

  private:
    static constexpr size_t idx(VerbClass c)
    {
        return static_cast<size_t>(c);
    }

    /** Seqlock read of the coherent {busy_at_reset, base_now} pair. */
    void loadResetEpoch(uint64_t *busy_at, uint64_t *base) const
    {
        for (;;) {
            const uint64_t s1 =
                reset_seq_.load(std::memory_order_acquire);
            if (s1 & 1)
                continue; // reset mid-flight; spin (reset is two stores)
            *busy_at = busy_at_reset_.load(std::memory_order_relaxed);
            *base = base_now_ns_.load(std::memory_order_relaxed);
            if (reset_seq_.load(std::memory_order_acquire) == s1)
                return;
        }
    }

    /** One queue pair's arrival track (per-QP model state). */
    struct QpTrack
    {
        uint64_t last_arrival_ns = 0;
        uint64_t busy_until_ns = 0; //!< when its queued WQEs fully drain
        VerbClass cls = VerbClass::Foreground; //!< class of its backlog
        uint64_t bursts = 0;
        uint64_t wqes = 0;
    };

    /**
     * Per-QP contention path: compute the wait a burst of @p n WQEs
     * from @p qp sees given every other track's undrained backlog, then
     * record this burst on @p qp's track. See the file comment for the
     * model; exact-once accounting holds under concurrent callers (one
     * mutex guards the tracks; the returned delays stay deterministic
     * for the single-host-thread benchmark harnesses).
     */
    uint64_t reserveContended(uint64_t n, uint64_t now_ns, uint64_t qp,
                              VerbClass cls)
    {
        std::lock_guard<std::mutex> lock(mu_);
        QpTrack &me = qps_[qp];

        const auto backlog_wqes = [&](const QpTrack &t) -> uint64_t {
            return t.busy_until_ns > now_ns
                       ? (t.busy_until_ns - now_ns + service_ns_ - 1) /
                             service_ns_
                       : 0;
        };

        uint64_t same = 0;  // same-class WQEs drained round-robin with us
        uint64_t other = 0; // other-class backlog, total
        for (const auto &[id, t] : qps_) {
            if (id == qp)
                continue;
            const uint64_t b = backlog_wqes(t);
            if (b == 0)
                continue;
            if (t.cls == cls)
                same += std::min<uint64_t>(b, n); // round-robin WQE drain
            else
                other += b;
        }

        // Cross-session doorbell aggregation (enabled by a non-zero
        // merge window): this doorbell coalesces into an existing NIC
        // arrival burst — skipping the per-doorbell arrival processing —
        // either when a same-class arrival from a DIFFERENT queue pair
        // landed within the merge window, or when other same-class QPs'
        // backlog is still draining (the NIC is already fetching WQEs of
        // this class, so one more chain rides the ongoing fetch). The
        // backlog form is what makes aggregation effective at high
        // session counts, where per-session virtual clocks are close but
        // not lockstep. The timestamps compare across sessions' clocks,
        // so use the absolute distance.
        bool merged = false;
        if (qos_.merge_window_ns > 0) {
            const uint64_t la = last_arrival_ns_[idx(cls)];
            const uint64_t lq = last_arrival_qp_[idx(cls)];
            const uint64_t dist = now_ns > la ? now_ns - la : la - now_ns;
            merged = same > 0 ||
                     (la != 0 && lq != qp && dist <= qos_.merge_window_ns);
        }
        // Own queue drains FIFO: a burst queues behind the QP's previous
        // undrained WQEs in full.
        uint64_t wait = (same + backlog_wqes(me)) * service_ns_;

        const uint32_t share = std::min<uint32_t>(qos_.bg_share_pct, 100);
        if (other > 0) {
            if (cls == VerbClass::Foreground && share < 100) {
                // Arbiter: at most share% of our WQE slots may go to
                // background backlog ahead of us.
                const uint64_t cap = n * share / (100 - share);
                wait += std::min(other, cap) * service_ns_;
            } else {
                // Uncapped (share == 100) the classes drain FIFO; and a
                // background burst always waits out foreground backlog
                // in full (foreground has priority).
                wait += other * service_ns_;
            }
        }
        if (cls == VerbClass::Background && share < 100) {
            // Pace the background class to share% of line rate: n WQEs
            // take n*s*100/share wall time, s per WQE of which is
            // service — the rest is arbitration stall.
            const uint64_t throttle =
                n * service_ns_ * (100 - share) /
                std::max<uint32_t>(share, 1);
            wait += throttle;
            bg_throttle_ns_.add(throttle);
        }

        const uint64_t arrival = merged ? 0 : qos_.arrival_overhead_ns;
        me.busy_until_ns =
            std::max(me.busy_until_ns, now_ns) + n * service_ns_ + arrival;
        me.last_arrival_ns = now_ns;
        me.cls = cls;
        ++me.bursts;
        me.wqes += n;
        last_arrival_ns_[idx(cls)] = now_ns;
        last_arrival_qp_[idx(cls)] = qp;

        ClassCounters &cc = cls_[idx(cls)];
        cc.bursts.add(1);
        cc.wqes.add(n);
        if (merged)
            cc.merged.add(1);
        cc.queue_wait_ns.add(wait);
        return wait + arrival;
    }

    uint64_t service_ns_;
    NicQosConfig qos_;

    // Cumulative-utilization state (shared by both models).
    std::atomic<uint64_t> max_now_ns_{0};
    std::atomic<uint64_t> base_now_ns_{0};
    std::atomic<uint64_t> busy_total_{0};    //!< monotone; never zeroed
    std::atomic<uint64_t> busy_at_reset_{0}; //!< subtraction point
    std::atomic<uint64_t> reset_seq_{0};     //!< seqlock: odd = resetting

    // Per-QP model state (mutex-guarded; empty in legacy mode).
    mutable std::mutex mu_;
    std::map<uint64_t, QpTrack> qps_; //!< ordered: deterministic iteration
    uint64_t last_arrival_ns_[2] = {0, 0}; //!< per class, for merging
    uint64_t last_arrival_qp_[2] = {0, 0};

    struct ClassCounters
    {
        Counter bursts;
        Counter wqes;
        Counter merged;
        Counter queue_wait_ns;
    };
    ClassCounters cls_[2];
    Counter bg_throttle_ns_;

    Counter verbs_;
    Counter gather_batches_;
    Counter gather_wqes_;
    Counter multi_op_batches_;
    Counter multi_op_wqes_;
    Counter busy_ns_;
};

} // namespace asymnvm

#endif // ASYMNVM_SIM_NIC_H_
