#ifndef ASYMNVM_SIM_NIC_H_
#define ASYMNVM_SIM_NIC_H_

/**
 * @file
 * Shared back-end RNIC contention model.
 *
 * Section 3.2 observes that although InfiniBand bandwidth is comparable
 * to NVM, the NIC "cannot provide enough IOPS for fine-grained data
 * structure accesses". The back-end NIC is modeled as a single server
 * with a fixed per-verb service time; the queueing delay each verb
 * experiences follows the M/D/1 mean-wait formula computed from the
 * NIC's measured utilization over a sliding virtual-time window.
 *
 * Utilization is the *cumulative* ratio of aggregate verb service time
 * (across every session) to the maximum virtual time any session has
 * reached since the last reset. A ratio is robust both to the skew
 * between concurrently running sessions' virtual clocks and to host
 * thread scheduling (on a single host core, sessions run in timeslices,
 * so any windowed estimate of arrival concurrency collapses to one).
 * This produces the sub-linear multi-front-end scaling of Figures 8/9.
 */

#include <algorithm>
#include <atomic>
#include <cstdint>

#include "common/stats.h"

namespace asymnvm {

/** One back-end's RNIC: a shared, IOPS-bounded verb server. */
class NicModel
{
  public:
    /** @param verb_service_ns Service time per verb (1 / max IOPS). */
    explicit NicModel(uint64_t verb_service_ns = 120)
        : service_ns_(verb_service_ns)
    {}

    /**
     * Account one verb issued at session-local time @p now_ns and return
     * the modeled queueing delay (0 when the NIC is mostly idle).
     */
    uint64_t reserve(uint64_t now_ns) { return reserveBatch(1, now_ns); }

    /**
     * Account @p n verbs that arrive as one doorbell-batched WQE chain at
     * session-local time @p now_ns. The chain occupies the NIC for n
     * service times (it still bounds aggregate IOPS) but enters the queue
     * as a single arrival, so the issuing session waits at most one
     * M/D/1 queueing delay — the cost structure that makes doorbell
     * batching worthwhile on real RNICs.
     */
    uint64_t reserveBatch(uint64_t n, uint64_t now_ns)
    {
        if (n == 0)
            return 0;
        verbs_.add(n);
        const uint64_t busy =
            busy_since_reset_.fetch_add(n * service_ns_,
                                        std::memory_order_relaxed) +
            n * service_ns_;
        busy_ns_.add(n * service_ns_);

        uint64_t maxn = max_now_ns_.load(std::memory_order_relaxed);
        while (now_ns > maxn &&
               !max_now_ns_.compare_exchange_weak(
                   maxn, now_ns, std::memory_order_relaxed)) {
        }
        maxn = std::max(maxn, now_ns);
        const uint64_t base = base_now_ns_.load(std::memory_order_relaxed);
        const uint64_t span = maxn > base ? maxn - base : 0;
        if (span < 10 * service_ns_)
            return 0; // not enough signal yet
        // Cumulative utilization, capped below saturation.
        const uint64_t ppk =
            std::min<uint64_t>(950, busy * 1000 / span);
        // M/D/1 mean waiting time: W = s * rho / (2 * (1 - rho)).
        return service_ns_ * ppk / (2 * (1000 - ppk));
    }

    /**
     * Account a doorbell-batched read gather: @p n read WQEs launched by
     * one doorbell enter the queue as a single arrival, exactly like
     * reserveBatch, but are additionally counted so benchmarks can report
     * how much of the read traffic arrives pre-batched. @p ops is the
     * number of independent *operations* whose demanded reads the chain
     * multiplexes (pipelined sessions overlap several ops per arrival);
     * gathers with ops > 1 are tracked separately so the arrival stream's
     * op-interleaving is observable at the NIC.
     */
    uint64_t reserveGather(uint64_t n, uint64_t now_ns, uint64_t ops = 1)
    {
        if (n == 0)
            return 0;
        gather_batches_.add(1);
        gather_wqes_.add(n);
        if (ops > 1) {
            multi_op_batches_.add(1);
            multi_op_wqes_.add(n);
        }
        return reserveBatch(n, now_ns);
    }

    uint64_t verbCount() const { return verbs_.get(); }
    uint64_t gatherBatches() const { return gather_batches_.get(); }
    uint64_t gatherWqes() const { return gather_wqes_.get(); }
    /** Gather arrivals multiplexing several in-flight ops' reads. */
    uint64_t multiOpBatches() const { return multi_op_batches_.get(); }
    uint64_t multiOpWqes() const { return multi_op_wqes_.get(); }
    uint64_t busyNs() const { return busy_ns_.get(); }
    uint64_t serviceNs() const { return service_ns_; }

    /** Cumulative utilization since the last reset, 0..1. */
    double utilization() const
    {
        const uint64_t span =
            max_now_ns_.load(std::memory_order_relaxed) -
            base_now_ns_.load(std::memory_order_relaxed);
        return span == 0
                   ? 0.0
                   : static_cast<double>(busy_since_reset_.load(
                         std::memory_order_relaxed)) /
                         static_cast<double>(span);
    }

    /** Reset counters and rebase utilization at the current time. */
    void resetStats()
    {
        verbs_.reset();
        gather_batches_.reset();
        gather_wqes_.reset();
        multi_op_batches_.reset();
        multi_op_wqes_.reset();
        busy_ns_.reset();
        busy_since_reset_.store(0, std::memory_order_relaxed);
        base_now_ns_.store(max_now_ns_.load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
    }

  private:
    uint64_t service_ns_;
    std::atomic<uint64_t> max_now_ns_{0};
    std::atomic<uint64_t> base_now_ns_{0};
    std::atomic<uint64_t> busy_since_reset_{0};
    Counter verbs_;
    Counter gather_batches_;
    Counter gather_wqes_;
    Counter multi_op_batches_;
    Counter multi_op_wqes_;
    Counter busy_ns_;
};

} // namespace asymnvm

#endif // ASYMNVM_SIM_NIC_H_
