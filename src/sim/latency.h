#ifndef ASYMNVM_SIM_LATENCY_H_
#define ASYMNVM_SIM_LATENCY_H_

/**
 * @file
 * All simulated hardware cost constants in one place.
 *
 * Values follow the paper's Section 3.2 (NVM ~100/300 ns read/write, RDMA
 * RTT ~2 us) and Section 9.1 (Mellanox CX-3, 40 Gbps). See DESIGN.md
 * Section 6 for the full table and sources.
 */

#include <cstdint>

namespace asymnvm {

/** Cost model for every simulated device. All times in nanoseconds. */
struct LatencyModel
{
    // --- NVM device (Intel Optane DC PMM class) ---
    // Optane random reads are the slow path (~300 ns); stores land in the
    // DIMM write buffer quickly (~100 ns) and persistence is enforced by
    // flush/fence. The paper quotes the same pair in Section 3.2.
    uint64_t nvm_read_ns = 300;        //!< media read
    uint64_t nvm_write_ns = 100;       //!< store into the DIMM buffer
    uint64_t persist_fence_ns = 250;   //!< clwb + sfence drain

    // --- DRAM / front-end cache ---
    uint64_t dram_access_ns = 60;  //!< local DRAM load/store
    uint64_t cache_probe_ns = 40;  //!< hash-map probe in the page cache

    // --- RDMA network (one-sided verbs over InfiniBand) ---
    uint64_t rdma_read_rtt_ns = 2000;   //!< READ round trip
    uint64_t rdma_write_rtt_ns = 1900;  //!< WRITE incl. completion
    uint64_t rdma_atomic_rtt_ns = 2100; //!< CAS / fetch-add
    double network_ns_per_byte = 0.2;   //!< 40 Gbps == 5 GB/s payload

    /**
     * CPU cost of *posting* a one-sided write without waiting for its
     * completion. Decoupled log persistency (Section 4.2/4.3) moves the
     * memory-log writes off the critical path by posting them and letting
     * the queue pair's ordering guarantee durability by the time the next
     * synchronous verb completes.
     */
    uint64_t post_overhead_ns = 150;

    /**
     * Amortized CPU cost per WQE in a doorbell-batched post list: linked
     * WQE chains let one doorbell launch many posted writes, so each
     * additional WQE costs a fraction of a standalone post. The chain's
     * flush pays post_overhead_ns once plus this per WQE (the mechanism
     * FaRM-style systems and the paper's batching lean on, Section 4.3).
     */
    uint64_t doorbell_batch_wqe_ns = 40;

    /** Doorbell/MMIO cost of kicking the NIC once (symmetric log ship). */
    uint64_t doorbell_ns = 400;

    /**
     * Per-verb service time at the back-end RNIC; bounds aggregate IOPS
     * when many front-ends share one back-end (Figures 8 and 9).
     */
    uint64_t nic_verb_service_ns = 150;

    // --- CPU work ---
    uint64_t cpu_op_overhead_ns = 80;   //!< bookkeeping per DS operation
    uint64_t cpu_log_replay_ns = 150;   //!< back-end replay of one mem log

    /** Byte-transfer cost on the wire. */
    uint64_t wireBytes(uint64_t n) const
    {
        return static_cast<uint64_t>(network_ns_per_byte *
                                     static_cast<double>(n));
    }

    /**
     * A model for the symmetric baseline: same constants, but data
     * structure reads/writes hit local NVM instead of the network.
     */
    static LatencyModel defaults() { return LatencyModel{}; }
};

} // namespace asymnvm

#endif // ASYMNVM_SIM_LATENCY_H_
