#ifndef ASYMNVM_SIM_FAILURE_H_
#define ASYMNVM_SIM_FAILURE_H_

/**
 * @file
 * Failure injection for crash-consistency testing.
 *
 * The recovery protocol of Section 7 must survive: front-end crashes while
 * reading or writing (Cases 1/2), back-end transient and permanent failures
 * (Cases 3/4), and mirror crashes (Case 5). A crash during a single
 * RDMA_Write may leave a torn log entry that only the transaction checksum
 * can detect (Section 4.2). FailureInjector arms those scenarios: it
 * counts RDMA verbs and, when a trigger fires, tears the in-flight write
 * at a 64-byte boundary and reports the back-end as crashed.
 */

#include <atomic>
#include <cstdint>
#include <optional>

#include "common/rand.h"

namespace asymnvm {

/** Arms deterministic or probabilistic crash points in the verbs layer. */
class FailureInjector
{
  public:
    FailureInjector() = default;

    /**
     * Crash the back-end on the @p nth verb from now. The in-flight WRITE
     * (if it is a write) is torn: only a random 64-byte-aligned prefix
     * reaches NVM.
     */
    void armCrashAfterVerbs(uint64_t nth, uint64_t seed = 7)
    {
        rng_ = Rng(seed);
        countdown_.store(nth, std::memory_order_relaxed);
        armed_.store(true, std::memory_order_relaxed);
    }

    /** Disarm any pending trigger. */
    void disarm() { armed_.store(false, std::memory_order_relaxed); }

    /** True once a trigger has fired and the "device" is down. */
    bool crashed() const
    {
        return crashed_.load(std::memory_order_acquire);
    }

    /** Clear the crashed flag after simulated recovery. */
    void recover() { crashed_.store(false, std::memory_order_release); }

    /**
     * Called by the verbs layer before each verb. Returns std::nullopt to
     * proceed normally, or the number of bytes of the in-flight write that
     * should still be applied (possibly 0) before the crash takes effect.
     */
    std::optional<uint64_t> onVerb(uint64_t write_len)
    {
        if (crashed())
            return 0;
        if (!armed_.load(std::memory_order_relaxed))
            return std::nullopt;
        if (countdown_.fetch_sub(1, std::memory_order_relaxed) != 0)
            return std::nullopt;
        armed_.store(false, std::memory_order_relaxed);
        crashed_.store(true, std::memory_order_release);
        if (write_len == 0)
            return 0;
        // Tear at a cache-line boundary: a prefix of the payload lands.
        const uint64_t lines = (write_len + 63) / 64;
        const uint64_t kept = rng_.nextBounded(lines); // 0..lines-1 lines
        return std::min(kept * 64, write_len);
    }

  private:
    std::atomic<bool> armed_{false};
    std::atomic<bool> crashed_{false};
    std::atomic<uint64_t> countdown_{0};
    Rng rng_;
};

} // namespace asymnvm

#endif // ASYMNVM_SIM_FAILURE_H_
