#ifndef ASYMNVM_SIM_FAILURE_H_
#define ASYMNVM_SIM_FAILURE_H_

/**
 * @file
 * Failure injection for crash-consistency testing.
 *
 * The recovery protocol of Section 7 must survive: front-end crashes while
 * reading or writing (Cases 1/2), back-end transient and permanent failures
 * (Cases 3/4), and mirror crashes (Case 5). A crash during a single
 * RDMA_Write may leave a torn log entry that only the transaction checksum
 * can detect (Section 4.2). FailureInjector arms those scenarios: it
 * counts RDMA verbs and, when a trigger fires, tears the in-flight write
 * at a 64-byte boundary and reports the back-end as crashed.
 */

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/rand.h"

namespace asymnvm {

/** Arms deterministic or probabilistic crash points in the verbs layer. */
class FailureInjector
{
  public:
    FailureInjector() = default;

    /**
     * Crash the back-end on the @p nth verb from now. The in-flight WRITE
     * (if it is a write) is torn: only a random 64-byte-aligned prefix
     * reaches NVM.
     */
    void armCrashAfterVerbs(uint64_t nth, uint64_t seed = 7)
    {
        rng_ = Rng(seed);
        fixed_tear_ = false;
        verbs_seen_.store(0, std::memory_order_relaxed);
        fired_at_.store(UINT64_MAX, std::memory_order_relaxed);
        countdown_.store(nth, std::memory_order_relaxed);
        armed_.store(true, std::memory_order_relaxed);
    }

    /**
     * Deterministic variant for crash-point sweeps: crash on the @p nth
     * verb from now, keeping exactly @p keep_bytes of the in-flight write
     * (clamped to the write length; reads always keep 0).
     */
    void armCrashAtVerb(uint64_t nth, uint64_t keep_bytes)
    {
        fixed_tear_ = true;
        fixed_keep_ = keep_bytes;
        verbs_seen_.store(0, std::memory_order_relaxed);
        fired_at_.store(UINT64_MAX, std::memory_order_relaxed);
        countdown_.store(nth, std::memory_order_relaxed);
        armed_.store(true, std::memory_order_relaxed);
    }

    /** Disarm any pending trigger. */
    void disarm() { armed_.store(false, std::memory_order_relaxed); }

    /**
     * Start recording the write length of every verb that passes through
     * onVerb (0 for reads/atomics). A crash-point sweep records one clean
     * run, then re-runs the workload once per recorded index.
     */
    void startRecording()
    {
        recorded_.clear();
        recording_ = true;
        verbs_seen_.store(0, std::memory_order_relaxed);
    }

    void stopRecording() { recording_ = false; }

    /** Per-verb write lengths captured since startRecording(). */
    const std::vector<uint64_t> &recordedWriteLens() const
    {
        return recorded_;
    }

    /**
     * 0-based verb index (counted from the last arm/startRecording call)
     * at which the trigger fired, or nullopt if it has not fired.
     */
    std::optional<uint64_t> firedAtVerb() const
    {
        // Acquire pairs with the release store in onVerb so a poller that
        // observes the fired index also observes the crashed state.
        const uint64_t v = fired_at_.load(std::memory_order_acquire);
        if (v == UINT64_MAX)
            return std::nullopt;
        return v;
    }

    /** True once a trigger has fired and the "device" is down. */
    bool crashed() const
    {
        return crashed_.load(std::memory_order_acquire);
    }

    /** Clear the crashed flag after simulated recovery. */
    void recover() { crashed_.store(false, std::memory_order_release); }

    /**
     * Called by the verbs layer before each verb. Returns std::nullopt to
     * proceed normally, or the number of bytes of the in-flight write that
     * should still be applied (possibly 0) before the crash takes effect.
     */
    std::optional<uint64_t> onVerb(uint64_t write_len)
    {
        if (recording_)
            recorded_.push_back(write_len);
        const uint64_t idx =
            verbs_seen_.fetch_add(1, std::memory_order_relaxed);
        if (crashed())
            return 0;
        if (!armed_.load(std::memory_order_relaxed))
            return std::nullopt;
        if (countdown_.fetch_sub(1, std::memory_order_relaxed) != 0)
            return std::nullopt;
        armed_.store(false, std::memory_order_relaxed);
        crashed_.store(true, std::memory_order_release);
        fired_at_.store(idx, std::memory_order_release);
        if (write_len == 0)
            return 0;
        if (fixed_tear_)
            return std::min(fixed_keep_, write_len);
        // Tear at a cache-line boundary: a prefix of the payload lands.
        const uint64_t lines = (write_len + 63) / 64;
        const uint64_t kept = rng_.nextBounded(lines); // 0..lines-1 lines
        return std::min(kept * 64, write_len);
    }

  private:
    std::atomic<bool> armed_{false};
    std::atomic<bool> crashed_{false};
    std::atomic<uint64_t> countdown_{0};
    std::atomic<uint64_t> verbs_seen_{0};
    std::atomic<uint64_t> fired_at_{UINT64_MAX};
    bool fixed_tear_ = false;
    uint64_t fixed_keep_ = 0;
    bool recording_ = false;
    std::vector<uint64_t> recorded_;
    Rng rng_;
};

} // namespace asymnvm

#endif // ASYMNVM_SIM_FAILURE_H_
