/**
 * @file
 * Quickstart: the smallest complete AsymNVM program.
 *
 * Builds a one-back-end cluster (with two mirror nodes, as the paper
 * deploys), connects a front-end session in the full RCB configuration,
 * creates a persistent B+tree in back-end NVM, writes and reads a few
 * keys, and shows that the data survives a complete reconnect.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/example_quickstart
 */

#include <cstdio>

#include "cluster/cluster.h"
#include "ds/bptree.h"
#include "frontend/session.h"

using namespace asymnvm;

int
main()
{
    // 1. A cluster: one NVM back-end blade, two mirror nodes.
    ClusterConfig ccfg;
    ccfg.num_backends = 1;
    ccfg.mirrors_per_backend = 2;
    ccfg.backend.nvm_size = 64ull << 20;
    Cluster cluster(ccfg);

    // 2. A front-end session with operation logs, caching and batching
    //    (the AsymNVM-RCB configuration of the paper).
    auto session = cluster.makeSession(
        SessionConfig::rcb(/*id=*/1, /*cache=*/4 << 20, /*batch=*/64));
    if (session == nullptr) {
        std::fprintf(stderr, "failed to connect\n");
        return 1;
    }

    // 3. A named persistent B+tree, hosted in back-end NVM.
    BpTree tree;
    if (!ok(BpTree::create(*session, /*backend=*/1, "quickstart/tree",
                           &tree))) {
        std::fprintf(stderr, "create failed\n");
        return 1;
    }

    // 4. Writes return per the configured persistence mode; flushAll()
    //    is the explicit durability fence (group commit).
    for (uint64_t k = 1; k <= 1000; ++k)
        tree.insert(k, Value::ofU64(k * k));
    session->flushAll();
    std::printf("inserted 1000 keys, size=%llu\n",
                static_cast<unsigned long long>(tree.size()));

    Value v;
    tree.find(707, &v);
    std::printf("tree[707] = %llu (expect 499849)\n",
                static_cast<unsigned long long>(v.asU64()));

    // 5. Persistence: a brand-new session re-opens the tree by name.
    session->disconnect(cluster.backend(1));
    auto session2 = cluster.makeSession(SessionConfig::rc(2, 4 << 20));
    BpTree reopened;
    if (!ok(BpTree::open(*session2, 1, "quickstart/tree", &reopened))) {
        std::fprintf(stderr, "open failed\n");
        return 1;
    }
    reopened.find(707, &v);
    std::printf("after reconnect: tree[707] = %llu, size=%llu\n",
                static_cast<unsigned long long>(v.asU64()),
                static_cast<unsigned long long>(reopened.size()));

    // 6. Virtual-time accounting: what did this cost?
    std::printf("front-end virtual time: %.2f ms, verbs issued: %llu\n",
                session2->clock().now() / 1e6,
                static_cast<unsigned long long>(
                    session2->verbs().verbsIssued()));
    return 0;
}
