/**
 * @file
 * Configurable workload driver — a YCSB-style client for the framework.
 *
 * Usage:
 *   example_workload_driver [ds] [mode] [ops] [keyspace] [put%] [theta]
 *
 *     ds       stack|queue|hash|skiplist|bst|bpt|mvbst|mvbpt  (default bpt)
 *     mode     naive|r|rc|rcb|sym|symb                        (default rcb)
 *     ops      operation count                                (default 20000)
 *     keyspace distinct keys                                  (default 20000)
 *     put%     0..100                                         (default 50)
 *     theta    0 = uniform, else Zipf skew                    (default 0)
 *
 * Prints virtual-time throughput, verb/cache statistics, and latency
 * percentiles — everything needed to explore configurations beyond the
 * paper's fixed benchmark grid.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "asymnvm.h"
#include "common/stats.h"

using namespace asymnvm;

namespace {

SessionConfig
modeConfig(const std::string &mode)
{
    if (mode == "naive")
        return SessionConfig::naive(1);
    if (mode == "r")
        return SessionConfig::r(1);
    if (mode == "rc")
        return SessionConfig::rc(1, 4 << 20);
    if (mode == "sym")
        return SessionConfig::symmetricBase(1, false);
    if (mode == "symb")
        return SessionConfig::symmetricBase(1, true);
    return SessionConfig::rcb(1, 4 << 20, 1024);
}

struct Driver
{
    virtual ~Driver() = default;
    virtual Status create(FrontendSession &s, uint64_t keyspace) = 0;
    virtual Status apply(const WorkItem &item) = 0;
};

template <typename DS>
struct KvDriver : Driver
{
    DS ds;
    Status create(FrontendSession &s, uint64_t keyspace) override
    {
        if constexpr (std::is_same_v<DS, HashTable>)
            return HashTable::create(s, 1, "drv", keyspace * 2, &ds);
        else
            return DS::create(s, 1, "drv", &ds);
    }
    Status apply(const WorkItem &item) override
    {
        if (item.op == WorkOp::Put) {
            if constexpr (requires { ds.put(item.key, item.value); })
                return ds.put(item.key, item.value);
            else
                return ds.insert(item.key, item.value);
        }
        Value v;
        Status st;
        if constexpr (requires { ds.get(item.key, &v); })
            st = ds.get(item.key, &v);
        else
            st = ds.find(item.key, &v);
        return st == Status::NotFound ? Status::Ok : st;
    }
};

template <typename DS>
struct ListDriver : Driver
{
    DS ds;
    Status create(FrontendSession &s, uint64_t) override
    {
        return DS::create(s, 1, "drv", &ds);
    }
    Status apply(const WorkItem &item) override
    {
        Value v = item.value;
        if (item.op == WorkOp::Put) {
            if constexpr (std::is_same_v<DS, Queue>)
                return ds.enqueue(v);
            else
                return ds.push(v);
        }
        Status st;
        if constexpr (std::is_same_v<DS, Queue>)
            st = ds.dequeue(&v);
        else
            st = ds.pop(&v);
        return st == Status::NotFound ? Status::Ok : st;
    }
};

std::unique_ptr<Driver>
makeDriver(const std::string &ds)
{
    if (ds == "stack")
        return std::make_unique<ListDriver<Stack>>();
    if (ds == "queue")
        return std::make_unique<ListDriver<Queue>>();
    if (ds == "hash")
        return std::make_unique<KvDriver<HashTable>>();
    if (ds == "skiplist")
        return std::make_unique<KvDriver<SkipList>>();
    if (ds == "bst")
        return std::make_unique<KvDriver<Bst>>();
    if (ds == "mvbst")
        return std::make_unique<KvDriver<MvBst>>();
    if (ds == "mvbpt")
        return std::make_unique<KvDriver<MvBpTree>>();
    return std::make_unique<KvDriver<BpTree>>();
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string ds = argc > 1 ? argv[1] : "bpt";
    const std::string mode = argc > 2 ? argv[2] : "rcb";
    const uint64_t ops = argc > 3 ? std::strtoull(argv[3], nullptr, 10)
                                  : 20000;
    const uint64_t keyspace =
        argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 20000;
    const double put_pct = argc > 5 ? std::atof(argv[5]) : 50.0;
    const double theta = argc > 6 ? std::atof(argv[6]) : 0.0;

    ClusterConfig ccfg;
    ccfg.backend.nvm_size = 256ull << 20;
    Cluster cluster(ccfg);
    auto session = cluster.makeSession(modeConfig(mode));
    if (session == nullptr) {
        std::fprintf(stderr, "connect failed\n");
        return 1;
    }
    auto driver = makeDriver(ds);
    if (!ok(driver->create(*session, keyspace))) {
        std::fprintf(stderr, "create failed\n");
        return 1;
    }

    WorkloadConfig wcfg;
    wcfg.key_space = keyspace;
    wcfg.put_ratio = put_pct / 100.0;
    wcfg.dist = theta > 0 ? KeyDist::Zipf : KeyDist::Uniform;
    wcfg.zipf_theta = theta;
    Workload w(wcfg);

    // Load phase (keyed structures only see it as useful).
    WorkloadConfig lcfg = wcfg;
    lcfg.put_ratio = 1.0;
    Workload loader(lcfg);
    for (uint64_t i = 0; i < keyspace; ++i)
        (void)driver->apply(loader.next());
    session->flushAll();
    session->resetStats();

    Histogram lat;
    const uint64_t t0 = session->clock().now();
    for (uint64_t i = 0; i < ops; ++i) {
        const uint64_t op_t0 = session->clock().now();
        const Status st = driver->apply(w.next());
        if (!ok(st)) {
            std::fprintf(stderr, "op %llu failed: %s\n",
                         static_cast<unsigned long long>(i),
                         statusName(st));
            return 1;
        }
        lat.record(session->clock().now() - op_t0);
    }
    session->flushAll();
    const uint64_t elapsed = session->clock().now() - t0;

    std::printf("ds=%s mode=%s ops=%llu keyspace=%llu put=%.0f%% "
                "theta=%.2f\n",
                ds.c_str(), mode.c_str(),
                static_cast<unsigned long long>(ops),
                static_cast<unsigned long long>(keyspace), put_pct,
                theta);
    std::printf("throughput: %.1f KOPS (%.2f virtual ms)\n",
                ops * 1e6 / static_cast<double>(elapsed), elapsed / 1e6);
    std::printf("latency: %s\n", lat.summary().c_str());
    std::printf("verbs issued: %llu (%.2f/op), bytes moved: %.2f MB\n",
                static_cast<unsigned long long>(
                    session->verbs().verbsIssued()),
                static_cast<double>(session->verbs().verbsIssued()) / ops,
                session->verbs().bytesMoved() / 1e6);
    std::printf("cache: hits=%llu misses=%llu (%.1f%% hit)\n",
                static_cast<unsigned long long>(session->cache().hits()),
                static_cast<unsigned long long>(
                    session->cache().misses()),
                100.0 * (1.0 - session->cache().missRatio()));
    return 0;
}
