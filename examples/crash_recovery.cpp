/**
 * @file
 * Walkthrough of the failure cases of Section 7.2 on a live cluster:
 *
 *   Case 2 — front-end writer crash mid-batch (op logs replayed),
 *   Case 3 — back-end transient failure and restart from its own NVM
 *            (including a torn transaction caught by the checksum),
 *   Case 4 — permanent back-end failure, mirror voted and promoted,
 *   Case 5 — mirror crash with service continuing.
 *
 * Each step prints what the protocol did and verifies the data.
 */

#include <cstdio>

#include "cluster/cluster.h"
#include "ds/hash_table.h"
#include "frontend/session.h"

using namespace asymnvm;

namespace {

bool
verifyRange(HashTable &ht, uint64_t upto)
{
    for (uint64_t k = 1; k <= upto; ++k) {
        Value v;
        if (ht.get(k, &v) != Status::Ok || v.asU64() != k * 10) {
            std::printf("  ✗ key %llu missing/wrong\n",
                        static_cast<unsigned long long>(k));
            return false;
        }
    }
    std::printf("  ✓ keys 1..%llu intact\n",
                static_cast<unsigned long long>(upto));
    return true;
}

} // namespace

int
main()
{
    ClusterConfig ccfg;
    ccfg.num_backends = 1;
    ccfg.mirrors_per_backend = 2;
    ccfg.backend.nvm_size = 32ull << 20;
    Cluster cluster(ccfg);
    auto s = cluster.makeSession(SessionConfig::rcb(1, 1 << 20, 64));

    HashTable ht;
    HashTable::create(*s, 1, "demo", 1024, &ht);

    std::printf("== Case 2: front-end writer crash mid-batch ==\n");
    for (uint64_t k = 1; k <= 40; ++k)
        ht.put(k, Value::ofU64(k * 10));
    std::printf("  40 puts issued, %u still in the open batch\n",
                s->opsInBatch());
    s->simulateCrash();
    HashTable re1;
    HashTable::open(*s, 1, "demo", &re1);
    s->recover();
    std::printf("  recovered via op-log re-execution\n");
    HashTable v1;
    HashTable::open(*s, 1, "demo", &v1);
    if (!verifyRange(v1, 40))
        return 1;

    std::printf("== Case 3: back-end transient failure (torn commit) ==\n");
    for (uint64_t k = 41; k <= 60; ++k)
        v1.put(k, Value::ofU64(k * 10));
    cluster.backend(1)->failure().armCrashAfterVerbs(0, /*seed=*/11);
    const Status st = s->flushAll(); // the commit write tears mid-flight
    std::printf("  flush during crash -> %s (checksum will catch the "
                "torn tail)\n",
                statusName(st));
    cluster.backend(1)->nvm().crash();
    cluster.restartBackend(1);
    s->simulateCrash();
    s->failover(1, cluster.backend(1));
    HashTable re2;
    HashTable::open(*s, 1, "demo", &re2);
    s->recover();
    HashTable v2;
    HashTable::open(*s, 1, "demo", &v2);
    if (!verifyRange(v2, 60))
        return 1;

    std::printf("== Case 4: permanent back-end failure, mirror vote ==\n");
    for (uint64_t k = 61; k <= 80; ++k)
        v2.put(k, Value::ofU64(k * 10));
    s->flushAll();
    cluster.crashBackendTransient(1);
    if (!ok(cluster.failBackendPermanently(1, s->clock().now()))) {
        std::printf("  no promotable mirror!\n");
        return 1;
    }
    std::printf("  keepAlive voted a mirror; replica promoted under "
                "node id 1\n");
    s->failover(1, cluster.backend(1));
    HashTable v3;
    HashTable::open(*s, 1, "demo", &v3);
    if (!verifyRange(v3, 80))
        return 1;

    std::printf("== Case 5: mirror crash ==\n");
    cluster.crashMirror(1, 0, s->clock().now());
    std::printf("  mirror left the group; %zu remain; service "
                "continues:\n",
                cluster.mirrorsOf(1).size());
    for (uint64_t k = 81; k <= 90; ++k)
        v3.put(k, Value::ofU64(k * 10));
    s->flushAll();
    if (!verifyRange(v3, 90))
        return 1;

    std::printf("all five failure cases handled ✓\n");
    return 0;
}
