/**
 * @file
 * A disaggregated key-value store: the paper's motivating scenario.
 *
 * A hash table partitioned across two back-end NVM blades serves a
 * skewed (Zipf) read-mostly workload from a front-end whose DRAM holds
 * only a small cache — the working set lives entirely in remote NVM.
 * Prints throughput and cache statistics, then demonstrates the
 * capacity asymmetry: the front-end cache is a tiny fraction of the
 * stored data.
 */

#include <cstdio>

#include "cluster/cluster.h"
#include "ds/hash_table.h"
#include "ds/partitioned.h"
#include "frontend/session.h"
#include "workload/workload.h"

using namespace asymnvm;

int
main()
{
    ClusterConfig ccfg;
    ccfg.num_backends = 2; // two NVM blades share the key space
    ccfg.mirrors_per_backend = 1;
    ccfg.backend.nvm_size = 64ull << 20;
    Cluster cluster(ccfg);

    constexpr uint64_t kKeys = 50000;
    constexpr uint64_t kOps = 30000;

    auto session = cluster.makeSession(
        SessionConfig::rcb(1, /*cache=*/kKeys * 88 / 10, /*batch=*/64));

    const auto ids = cluster.backendIds();
    Partitioned<HashTable> store;
    const Status st = Partitioned<HashTable>::create(
        *session, ids, "kv", /*nparts=*/4, &store,
        [](FrontendSession &s, NodeId be, std::string_view name,
           HashTable *out) {
            return HashTable::create(s, be, name, kKeys / 2, out);
        });
    if (!ok(st)) {
        std::fprintf(stderr, "create failed: %s\n", statusName(st));
        return 1;
    }

    // Load phase.
    WorkloadConfig load;
    load.key_space = kKeys;
    Workload loader(load);
    for (uint64_t i = 0; i < kKeys; ++i) {
        const WorkItem item = loader.next();
        store.insert(item.key, item.value);
    }
    session->flushAll();
    std::printf("loaded %llu keys across %u partitions on %zu blades\n",
                static_cast<unsigned long long>(store.size()),
                store.partitionCount(), ids.size());

    // Serve a skewed, read-mostly workload.
    WorkloadConfig serve = load;
    serve.put_ratio = 0.1;
    serve.dist = KeyDist::Zipf;
    serve.zipf_theta = 0.99;
    serve.seed = 99;
    Workload w(serve);
    session->resetStats();
    const uint64_t t0 = session->clock().now();
    uint64_t hits = 0;
    for (uint64_t i = 0; i < kOps; ++i) {
        const WorkItem item = w.next();
        if (item.op == WorkOp::Put) {
            store.insert(item.key, item.value);
        } else {
            Value v;
            hits += store.find(item.key, &v) == Status::Ok ? 1 : 0;
        }
    }
    session->flushAll();
    const uint64_t elapsed = session->clock().now() - t0;

    std::printf("served %llu ops (10%% put, Zipf .99) in %.2f virtual "
                "ms -> %.1f KOPS\n",
                static_cast<unsigned long long>(kOps), elapsed / 1e6,
                kOps * 1e6 / static_cast<double>(elapsed));
    std::printf("found %llu of the gets; cache hit ratio %.1f%%, "
                "RDMA verbs %llu\n",
                static_cast<unsigned long long>(hits),
                100.0 * (1.0 - session->cache().missRatio()),
                static_cast<unsigned long long>(
                    session->verbs().verbsIssued()));
    std::printf("asymmetry: ~%.1f MB stored in NVM vs %.1f MB front-end "
                "cache\n",
                kKeys * 88 / 1e6, (kKeys * 88 / 10) / 1e6);
    return 0;
}
