/**
 * @file
 * A bank ledger on AsymNVM: the SmallBank application with a crash in
 * the middle of the day.
 *
 * Runs the standard SmallBank transaction mix, crashes the front-end
 * with a batch of transactions durable only as operation logs, recovers
 * through the Section 7.2 protocol, and verifies the money-conservation
 * invariant end to end.
 */

#include <cstdio>

#include "apps/smallbank.h"
#include "cluster/cluster.h"
#include "frontend/session.h"

using namespace asymnvm;

int
main()
{
    ClusterConfig ccfg;
    ccfg.num_backends = 1;
    ccfg.mirrors_per_backend = 2;
    ccfg.backend.nvm_size = 64ull << 20;
    Cluster cluster(ccfg);

    constexpr uint64_t kAccounts = 2000;
    auto session = cluster.makeSession(
        SessionConfig::rcb(1, 1 << 20, /*batch=*/128));

    SmallBank bank;
    if (!ok(SmallBank::create(*session, 1, kAccounts, &bank))) {
        std::fprintf(stderr, "create failed\n");
        return 1;
    }
    int64_t opening = 0;
    bank.totalAssets(&opening);
    std::printf("opened %llu accounts, total assets %lld\n",
                static_cast<unsigned long long>(kAccounts),
                static_cast<long long>(opening));

    // Morning: a few thousand transactions, committed.
    Rng rng(2026);
    for (int i = 0; i < 3000; ++i)
        bank.runOne(rng);
    session->flushAll();

    // Midday: money-moving transactions only... and the front-end dies
    // mid-batch. The transfers are durable solely as operation logs.
    for (int i = 0; i < 100; ++i) {
        const uint64_t a = 1 + rng.nextBounded(kAccounts);
        uint64_t b = 1 + rng.nextBounded(kAccounts);
        if (a == b)
            b = b % kAccounts + 1;
        bank.sendPayment(a, b, 5);
    }
    std::printf("crash! %u transfers pending in the current batch\n",
                session->opsInBatch());
    session->simulateCrash();

    // Recovery: re-open the application (which re-registers its op-log
    // replayers) and run the recovery protocol.
    SmallBank reopened;
    if (!ok(SmallBank::open(*session, 1, &reopened))) {
        std::fprintf(stderr, "reopen failed\n");
        return 1;
    }
    if (!ok(session->recover())) {
        std::fprintf(stderr, "recovery failed\n");
        return 1;
    }
    std::printf("recovered: uncovered operation logs re-executed\n");

    // Afternoon audit: every transfer either fully happened or was
    // re-executed; money is conserved modulo the deposit/check mix run
    // in the morning (transfers alone conserve exactly).
    SmallBank audit;
    SmallBank::open(*session, 1, &audit);
    int64_t closing = 0;
    audit.totalAssets(&closing);
    std::printf("closing audit: total assets %lld\n",
                static_cast<long long>(closing));

    // Re-run conservation-only traffic to prove the invariant holds.
    int64_t before = closing;
    for (int i = 0; i < 2000; ++i) {
        const uint64_t a = 1 + rng.nextBounded(kAccounts);
        uint64_t b = 1 + rng.nextBounded(kAccounts);
        if (a == b)
            b = b % kAccounts + 1;
        if (rng.nextBool())
            audit.sendPayment(a, b, 3);
        else
            audit.amalgamate(a, b);
    }
    session->flushAll();
    int64_t after = 0;
    audit.totalAssets(&after);
    std::printf("after 2000 transfer-only txns: %lld (%s)\n",
                static_cast<long long>(after),
                after == before ? "conserved ✓" : "VIOLATION ✗");
    return after == before ? 0 : 1;
}
