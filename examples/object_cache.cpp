/**
 * @file
 * A remote object store with failover: variable-size objects (64 B to
 * 8 KB, the paper's industry-trace range) stored in disaggregated NVM
 * through BlobStore, surviving a permanent back-end failure via mirror
 * promotion with end-to-end checksum verification of every object.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "asymnvm.h"

using namespace asymnvm;

int
main()
{
    ClusterConfig ccfg;
    ccfg.num_backends = 1;
    ccfg.mirrors_per_backend = 2;
    ccfg.backend.nvm_size = 64ull << 20;
    Cluster cluster(ccfg);
    auto session = cluster.makeSession(SessionConfig::rcb(1, 2 << 20, 32));

    BlobStore store;
    if (!ok(BlobStore::create(*session, 1, "objects", 4096, &store))) {
        std::fprintf(stderr, "create failed\n");
        return 1;
    }

    // Store objects of every size class the traces describe.
    Rng rng(2026);
    std::vector<uint32_t> sizes;
    uint64_t total_bytes = 0;
    for (uint64_t id = 1; id <= 500; ++id) {
        const uint32_t len =
            static_cast<uint32_t>(64 + rng.nextBounded(8129));
        std::vector<uint8_t> obj(len);
        for (uint32_t i = 0; i < len; ++i)
            obj[i] = static_cast<uint8_t>(mix64(id) + i);
        if (!ok(store.put(id, obj.data(), len))) {
            std::fprintf(stderr, "put %llu failed\n",
                         static_cast<unsigned long long>(id));
            return 1;
        }
        sizes.push_back(len);
        total_bytes += len;
    }
    session->flushAll();
    std::printf("stored 500 objects (%.2f MB) in disaggregated NVM\n",
                total_bytes / 1e6);

    // Disaster: the back-end blade dies for good.
    cluster.crashBackendTransient(1);
    if (!ok(cluster.failBackendPermanently(1, session->clock().now()))) {
        std::fprintf(stderr, "no promotable mirror\n");
        return 1;
    }
    session->failover(1, cluster.backend(1));
    std::printf("back-end lost; mirror promoted under the same node id\n");

    // Every object must come back intact — BlobStore verifies each
    // payload against its descriptor CRC.
    BlobStore reopened;
    if (!ok(BlobStore::open(*session, 1, "objects", &reopened))) {
        std::fprintf(stderr, "reopen failed\n");
        return 1;
    }
    uint64_t verified = 0;
    for (uint64_t id = 1; id <= 500; ++id) {
        std::vector<uint8_t> obj;
        const Status st = reopened.get(id, &obj);
        if (st != Status::Ok || obj.size() != sizes[id - 1]) {
            std::fprintf(stderr, "object %llu lost/corrupt (%s)\n",
                         static_cast<unsigned long long>(id),
                         statusName(st));
            return 1;
        }
        bool good = true;
        for (uint32_t i = 0; i < obj.size(); ++i)
            good &= obj[i] == static_cast<uint8_t>(mix64(id) + i);
        if (!good) {
            std::fprintf(stderr, "object %llu bytes wrong\n",
                         static_cast<unsigned long long>(id));
            return 1;
        }
        ++verified;
    }
    std::printf("all %llu objects verified byte-for-byte after "
                "failover ✓\n",
                static_cast<unsigned long long>(verified));
    return 0;
}
